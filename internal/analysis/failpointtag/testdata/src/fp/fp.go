// Package fp is the failpoint registry fixture: declaring
// FailpointsEnabled marks it as the build dual, which exempts it from
// the tag rule and makes its arming surface recognizable.
package fp

// FailpointsEnabled names the build dual.
const FailpointsEnabled = false

// Action is an armed behavior.
type Action struct{}

// Enable arms a hook and returns its disarm function.
func Enable(name string, a Action) func() {
	_, _ = name, a
	return func() {}
}

// PanicAction panics when the hook fires.
func PanicAction(msg string) Action {
	_ = msg
	return Action{}
}

// SleepAction stalls the hook.
func SleepAction(ms int) Action {
	_ = ms
	return Action{}
}

// PanicOnArg panics when the hook argument matches.
func PanicOnArg(arg any) Action {
	_ = arg
	return Action{}
}

// Inject fires a hook: call sites are exempt everywhere — hooks are
// compiled into production paths by design.
func Inject(name string, arg any) {
	_, _ = name, arg
}
