//go:build failpoints

// A file constrained by the failpoints tag may arm freely: it only
// exists in builds where arming is real.
package armer

import "fixture/fp"

// ArmTagged arms a hook from inside the tagged build.
func ArmTagged() {
	defer fp.Enable("hook", fp.SleepAction(1))()
}
