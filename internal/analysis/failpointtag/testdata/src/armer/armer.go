// Package armer arms fixture failpoints from an untagged file: every
// arming reference is flagged, Inject stays exempt.
package armer

import "fixture/fp"

// Arm arms a hook without the build tag.
func Arm() {
	disarm := fp.Enable("hook", fp.PanicAction("boom")) // want "arming call Enable" "action constructor PanicAction"
	defer disarm()
	fp.Inject("hook", nil)
}

// Actions builds actions without the build tag.
func Actions() []fp.Action {
	return []fp.Action{
		fp.SleepAction(5), // want "action constructor SleepAction"
		fp.PanicOnArg(3),  // want "action constructor PanicOnArg"
	}
}
