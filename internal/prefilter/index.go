package prefilter

// Index is an incremental byte n-gram posting index over an append-only
// sequence of documents: position p is the p-th Add. For every document it
// records the set of distinct byte trigrams and bigrams; Candidates
// intersects a requirement's gram postings to produce a superset of the
// documents that can contain every factor, so a corpus evaluation visits
// only candidates instead of substring-scanning everything.
//
// Postings hold each document position at most once per gram, so the memory
// cost is O(distinct grams per document) ≤ 2·|doc| uint32s in the worst
// case (natural text is far below: repeated grams collapse).
//
// An Index is not safe for concurrent use on its own; the owning store
// serializes access (the shard lock in internal/corpus).
type Index struct {
	post map[uint32][]uint32
	n    uint32
}

// NewIndex creates an empty index.
func NewIndex() *Index {
	return &Index{post: make(map[uint32][]uint32)}
}

// Gram keys: trigrams occupy the low 24 bits; bigrams are tagged into a
// disjoint namespace so both fit one map.
const bigramTag = 1 << 24

func triKey(b0, b1, b2 byte) uint32 {
	return uint32(b0)<<16 | uint32(b1)<<8 | uint32(b2)
}

func biKey(b0, b1 byte) uint32 {
	return bigramTag | uint32(b0)<<8 | uint32(b1)
}

// Add appends the next document. Positions are assigned in call order,
// matching the append-only store the index shadows.
func (ix *Index) Add(doc string) {
	pos := ix.n
	ix.n++
	record := func(k uint32) {
		// Positions are assigned monotonically, so a gram already recorded
		// for this document has the posting list ending in pos — dedup
		// needs no side table.
		list := ix.post[k]
		if n := len(list); n > 0 && list[n-1] == pos {
			return
		}
		ix.post[k] = append(list, pos)
	}
	for i := 0; i+2 < len(doc); i++ {
		record(triKey(doc[i], doc[i+1], doc[i+2]))
	}
	for i := 0; i+1 < len(doc); i++ {
		record(biKey(doc[i], doc[i+1]))
	}
}

// Len reports the number of indexed documents.
func (ix *Index) Len() int { return int(ix.n) }

// Candidates returns the sorted positions of documents that may satisfy
// the requirement. constrained is false when no factor was indexable
// (every factor shorter than two bytes, or the requirement is empty) — the
// caller must then treat every position as a candidate. The positions are
// a superset of the true matches (gram intersection has false positives:
// all grams present need not mean the contiguous factor is); callers
// verify survivors with Requirement.Match.
func (ix *Index) Candidates(req Requirement) (pos []uint32, constrained bool) {
	var cur []uint32
	have := false
	step := func(list []uint32) bool {
		if !have {
			cur = append(cur, list...)
			have = true
		} else {
			cur = intersect(cur, list)
		}
		return len(cur) > 0
	}
	for _, l := range req.lits {
		switch {
		case len(l) >= 3:
			for i := 0; i+2 < len(l); i++ {
				if !step(ix.post[triKey(l[i], l[i+1], l[i+2])]) {
					return nil, true
				}
			}
		case len(l) == 2:
			if !step(ix.post[biKey(l[0], l[1])]) {
				return nil, true
			}
		}
	}
	return cur, have
}

// intersect merges two sorted posting lists in place of a.
func intersect(a, b []uint32) []uint32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
