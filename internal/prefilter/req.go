// Package prefilter is the engine's literal-requirement subsystem: a small
// algebra of "required literal" sets that compiles with spanners and
// queries, and a corpus skip index that turns those sets into candidate
// document lists.
//
// A Requirement is a conjunction of byte-string factors every matching
// document must contain — a sound (never complete) necessary condition
// derived from the regex formula (internal/rgx.RequiredLiterals) and
// propagated through the spanner algebra: Join and Project preserve the
// union of their operands' requirements (a joined match satisfies both
// sides; projection never changes which documents match), Union keeps only
// factors implied by every branch. At corpus scale the Index intersects a
// requirement's n-gram postings to visit only candidate documents instead
// of scanning every shard.
package prefilter

import (
	"sort"
	"strings"
)

// MaxLiterals caps how many factors a Requirement keeps after
// normalization; the longest (most selective) survive. Composed spanners
// can otherwise accumulate unboundedly many factors, each costing one
// substring scan per unindexed document.
const MaxLiterals = 8

// Requirement is a conjunction of literal factors: a document can match
// only if it contains every one. The zero value requires nothing and
// matches every document.
type Requirement struct {
	// lits is normalized: no empty strings, no factor contained in another
	// (the longer one subsumes it), sorted longest-first (ties
	// lexicographic), at most MaxLiterals entries.
	lits []string
}

// New builds a normalized requirement from raw literals.
func New(lits ...string) Requirement {
	return Requirement{lits: normalize(lits)}
}

func normalize(lits []string) []string {
	cand := make([]string, 0, len(lits))
	for _, l := range lits {
		if l != "" {
			cand = append(cand, l)
		}
	}
	if len(cand) == 0 {
		return nil
	}
	sort.Slice(cand, func(i, j int) bool {
		if len(cand[i]) != len(cand[j]) {
			return len(cand[i]) > len(cand[j])
		}
		return cand[i] < cand[j]
	})
	out := cand[:0]
	for _, l := range cand {
		subsumed := false
		for _, kept := range out {
			if strings.Contains(kept, l) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			out = append(out, l)
		}
	}
	if len(out) > MaxLiterals {
		out = out[:MaxLiterals]
	}
	return out
}

// IsEmpty reports whether the requirement constrains nothing.
func (r Requirement) IsEmpty() bool { return len(r.lits) == 0 }

// Literals returns the normalized factors, longest first.
func (r Requirement) Literals() []string { return append([]string(nil), r.lits...) }

// Longest returns the single most selective factor, or "" — the
// one-literal view legacy callers (Spanner.RequiredLiteral) expose.
func (r Requirement) Longest() string {
	if len(r.lits) == 0 {
		return ""
	}
	return r.lits[0]
}

// Match reports whether doc satisfies the requirement: it contains every
// factor. Factors are checked longest (most selective) first.
func (r Requirement) Match(doc string) bool {
	for _, l := range r.lits {
		if !strings.Contains(doc, l) {
			return false
		}
	}
	return true
}

// And conjoins two requirements: a document matching a join (or any
// composition that needs both operands to match) must satisfy both sides.
func (r Requirement) And(o Requirement) Requirement {
	if r.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return r
	}
	return New(append(r.Literals(), o.lits...)...)
}

// Or disjoins requirements: a factor survives only if every alternative
// implies it (each branch requires some superstring of it), including
// maximal common substrings of the branches' factors — Or of "abc" and
// "abd" requires "ab". Any unconstrained branch makes the whole union
// unconstrained.
func Or(rs ...Requirement) Requirement {
	sets := make([][]string, len(rs))
	for i, r := range rs {
		sets[i] = r.lits
	}
	return New(CommonFactors(sets)...)
}

// CommonFactors returns the maximal substrings of sets[0]'s literals that
// every other set implies (some literal contains them): the factors
// required by a disjunction whose branches require the given sets. It is
// the shared core of Or and of the regex analysis's alternation case. An
// empty set is an unconstrained branch — nothing is common. Implication
// is window-monotone (shrinking a window keeps it implied), so a sliding
// window over each literal finds every maximal implied substring once.
func CommonFactors(sets [][]string) []string {
	if len(sets) == 0 {
		return nil
	}
	for _, s := range sets {
		if len(s) == 0 {
			return nil
		}
	}
	seen := map[string]bool{}
	var out []string
	for _, l := range sets[0] {
		j, lastEnd := 0, 0
		for i := 0; i < len(l); i++ {
			if j < i {
				j = i
			}
			for j < len(l) && impliedByAll(l[i:j+1], sets[1:]) {
				j++
			}
			if j > i && j > lastEnd { // maximal: window end advanced
				lastEnd = j
				if s := l[i:j]; !seen[s] {
					seen[s] = true
					out = append(out, s)
				}
			}
		}
	}
	return out
}

// impliedByAll reports whether every set has a literal containing l (a
// branch requiring a superstring of l transitively requires l).
func impliedByAll(l string, sets [][]string) bool {
	for _, set := range sets {
		ok := false
		for _, m := range set {
			if strings.Contains(m, l) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// String renders the requirement for diagnostics.
func (r Requirement) String() string {
	if r.IsEmpty() {
		return "⊤"
	}
	return "contains(" + strings.Join(r.lits, " ∧ ") + ")"
}
