package prefilter_test

import (
	"reflect"
	"testing"

	"spanjoin/internal/prefilter"
)

func TestNewNormalizes(t *testing.T) {
	cases := []struct {
		in   []string
		want []string
	}{
		{nil, nil},
		{[]string{""}, nil},
		{[]string{"abc"}, []string{"abc"}},
		{[]string{"abc", "abc"}, []string{"abc"}},
		// "bc" is a factor of "abcd": subsumed.
		{[]string{"bc", "abcd"}, []string{"abcd"}},
		{[]string{"xy", "ab", ""}, []string{"ab", "xy"}},
		// Longest first, ties lexicographic.
		{[]string{"zz", "aaa", "yy"}, []string{"aaa", "yy", "zz"}},
	}
	for _, tc := range cases {
		got := prefilter.New(tc.in...).Literals()
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("New(%q).Literals() = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestNewCapsLiterals(t *testing.T) {
	lits := []string{"aaaa", "bbbb", "cccc", "dddd", "eeee", "ffff", "gggg", "hhhh", "iiii", "jjjj"}
	r := prefilter.New(lits...)
	if n := len(r.Literals()); n != prefilter.MaxLiterals {
		t.Fatalf("got %d literals, want cap %d", n, prefilter.MaxLiterals)
	}
}

func TestMatch(t *testing.T) {
	r := prefilter.New("needle", "hay")
	if !r.Match("hay around the needle") {
		t.Error("doc with both factors must match")
	}
	if r.Match("just hay") {
		t.Error("doc missing a factor must not match")
	}
	var none prefilter.Requirement
	if !none.Match("anything") || !none.Match("") {
		t.Error("empty requirement must match everything")
	}
}

func TestAnd(t *testing.T) {
	a := prefilter.New("alpha")
	b := prefilter.New("beta")
	ab := a.And(b)
	if got := ab.Literals(); len(got) != 2 {
		t.Fatalf("And = %q, want both factors", got)
	}
	if !ab.Match("alpha beta") || ab.Match("alpha only") || ab.Match("beta only") {
		t.Error("And must demand both factors")
	}
	var none prefilter.Requirement
	if got := none.And(a).Literals(); !reflect.DeepEqual(got, []string{"alpha"}) {
		t.Errorf("⊤ ∧ a = %q, want [alpha]", got)
	}
	if got := a.And(none).Literals(); !reflect.DeepEqual(got, []string{"alpha"}) {
		t.Errorf("a ∧ ⊤ = %q, want [alpha]", got)
	}
}

func TestOr(t *testing.T) {
	// Identical branches keep the factor.
	r := prefilter.Or(prefilter.New("err"), prefilter.New("err"))
	if r.Longest() != "err" {
		t.Errorf("Or(err, err) = %v", r)
	}
	// A branch requiring a superstring still implies the shorter factor.
	r = prefilter.Or(prefilter.New("err"), prefilter.New("xerrx"))
	if r.Longest() != "err" {
		t.Errorf("Or(err, xerrx) = %v, want err", r)
	}
	// Maximal common substrings survive: Or of "abc" and "abd" needs "ab"
	// (the same strengthening the regex analysis applies to alternations).
	r = prefilter.Or(prefilter.New("abc"), prefilter.New("abd"))
	if r.Longest() != "ab" {
		t.Errorf("Or(abc, abd) = %v, want ab", r)
	}
	// Disjoint branches require nothing in common.
	r = prefilter.Or(prefilter.New("abc"), prefilter.New("xyz"))
	if !r.IsEmpty() {
		t.Errorf("Or(abc, xyz) = %v, want ⊤", r)
	}
	// One unconstrained branch washes out the whole union.
	r = prefilter.Or(prefilter.New("abc"), prefilter.Requirement{})
	if !r.IsEmpty() {
		t.Errorf("Or(abc, ⊤) = %v, want ⊤", r)
	}
	// Multi-factor branches: the common factor survives, and so does the
	// single byte "a" both branches' factors share ("alpha"/"beta").
	r = prefilter.Or(prefilter.New("alpha", "common"), prefilter.New("beta", "xcommony"))
	if got := r.Literals(); !reflect.DeepEqual(got, []string{"common", "a"}) {
		t.Errorf("Or = %q, want [common a]", got)
	}
}

func TestLongest(t *testing.T) {
	if got := prefilter.New("ab", "wxyz").Longest(); got != "wxyz" {
		t.Errorf("Longest = %q", got)
	}
	var none prefilter.Requirement
	if none.Longest() != "" {
		t.Error("empty requirement has no longest factor")
	}
}
