package prefilter_test

import (
	"strings"
	"testing"

	"spanjoin/internal/prefilter"
)

func candidateSet(ix *prefilter.Index, req prefilter.Requirement, n int) map[int]bool {
	pos, constrained := ix.Candidates(req)
	out := make(map[int]bool)
	if !constrained {
		for i := 0; i < n; i++ {
			out[i] = true
		}
		return out
	}
	for _, p := range pos {
		out[int(p)] = true
	}
	return out
}

func TestIndexCandidatesSuperset(t *testing.T) {
	docs := []string{
		"the quick brown fox",
		"a needle in the haystack",
		"no grams shared here",
		"needle and thread",
		"",
		"nee dle split apart",
	}
	ix := prefilter.NewIndex()
	for _, d := range docs {
		ix.Add(d)
	}
	req := prefilter.New("needle")
	cand := candidateSet(ix, req, len(docs))
	for i, d := range docs {
		if strings.Contains(d, "needle") && !cand[i] {
			t.Errorf("doc %d %q contains the factor but is not a candidate", i, d)
		}
	}
	// Exactness after verification: candidates surviving Match are exactly
	// the true matches.
	for i, d := range docs {
		want := strings.Contains(d, "needle")
		got := cand[i] && req.Match(d)
		if got != want {
			t.Errorf("doc %d %q: verified candidate %v, want %v", i, d, got, want)
		}
	}
}

func TestIndexShortLiterals(t *testing.T) {
	ix := prefilter.NewIndex()
	docs := []string{"ab here", "nothing", "cab"}
	for _, d := range docs {
		ix.Add(d)
	}
	// Two-byte factors use the bigram postings.
	cand := candidateSet(ix, prefilter.New("ab"), len(docs))
	if !cand[0] || cand[1] || !cand[2] {
		t.Errorf("bigram candidates = %v", cand)
	}
	// One-byte factors cannot constrain: every doc stays a candidate.
	if _, constrained := ix.Candidates(prefilter.New("a")); constrained {
		t.Error("single-byte factor must not constrain the index")
	}
	if _, constrained := ix.Candidates(prefilter.Requirement{}); constrained {
		t.Error("empty requirement must not constrain the index")
	}
}

func TestIndexConjunction(t *testing.T) {
	ix := prefilter.NewIndex()
	docs := []string{"alpha beta", "alpha only", "beta only", "gamma"}
	for _, d := range docs {
		ix.Add(d)
	}
	cand := candidateSet(ix, prefilter.New("alpha", "beta"), len(docs))
	if !cand[0] {
		t.Error("doc with both factors must be a candidate")
	}
	if cand[1] || cand[2] || cand[3] {
		t.Errorf("conjunction candidates = %v, want only doc 0", cand)
	}
}

func TestIndexIncremental(t *testing.T) {
	ix := prefilter.NewIndex()
	ix.Add("without")
	req := prefilter.New("signal")
	if pos, constrained := ix.Candidates(req); !constrained || len(pos) != 0 {
		t.Fatalf("Candidates = %v,%v before the doc exists", pos, constrained)
	}
	ix.Add("the signal arrives")
	pos, constrained := ix.Candidates(req)
	if !constrained || len(pos) != 1 || pos[0] != 1 {
		t.Fatalf("Candidates = %v,%v after Add, want [1]", pos, constrained)
	}
	if ix.Len() != 2 {
		t.Fatalf("Len = %d", ix.Len())
	}
}
