package prefilter_test

import (
	"strings"
	"testing"

	"spanjoin/internal/prefilter"
)

// FuzzIndexCandidates is the skip index's differential harness: for random
// document sets and factor conjunctions, index-selected candidates verified
// with Requirement.Match must equal the brute-force substring scan — any
// missed posting, broken intersection or bad gram key shows up as a lost or
// phantom document.
func FuzzIndexCandidates(f *testing.F) {
	f.Add("aab|ba|abab", "ab")
	f.Add("needle in|hay|the needle", "needle")
	f.Add("x|y|z", "")
	f.Add("alpha beta|alpha|beta", "alpha\xffbeta")
	f.Add("aaa|aa|a||aaaa", "aa\xffaaa")
	f.Fuzz(func(t *testing.T, blob, litBlob string) {
		docs := strings.Split(blob, "|")
		if len(docs) > 16 {
			docs = docs[:16]
		}
		var lits []string
		for _, l := range strings.Split(litBlob, "\xff") {
			if len(l) > 12 {
				l = l[:12]
			}
			lits = append(lits, l)
		}
		if len(lits) > 4 {
			lits = lits[:4]
		}
		req := prefilter.New(lits...)

		ix := prefilter.NewIndex()
		for _, d := range docs {
			ix.Add(d)
		}
		if ix.Len() != len(docs) {
			t.Fatalf("Len = %d, want %d", ix.Len(), len(docs))
		}
		pos, constrained := ix.Candidates(req)
		cand := make(map[int]bool)
		if constrained {
			prev := -1
			for _, p := range pos {
				if int(p) <= prev {
					t.Fatalf("candidates not strictly sorted: %v", pos)
				}
				prev = int(p)
				cand[int(p)] = true
			}
		} else {
			for i := range docs {
				cand[i] = true
			}
		}
		for i, d := range docs {
			want := true
			for _, l := range req.Literals() {
				if !strings.Contains(d, l) {
					want = false
					break
				}
			}
			if want && !cand[i] {
				t.Fatalf("doc %d %q satisfies %v but was skipped", i, d, req)
			}
			got := cand[i] && req.Match(d)
			if got != want {
				t.Fatalf("doc %d %q: verified=%v, brute force=%v (req %v)", i, d, got, want, req)
			}
		}
	})
}
