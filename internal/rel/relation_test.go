package rel

import (
	"math/rand"
	"testing"

	"spanjoin/internal/span"
)

func sp(a, b int) span.Span { return span.Span{Start: a, End: b} }

func TestRelationAddDedup(t *testing.T) {
	r := NewRelation(span.NewVarList("x"))
	if !r.Add(span.Tuple{sp(1, 2)}) {
		t.Error("first Add should report new")
	}
	if r.Add(span.Tuple{sp(1, 2)}) {
		t.Error("duplicate Add should report false")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	if !r.Contains(span.Tuple{sp(1, 2)}) || r.Contains(span.Tuple{sp(1, 3)}) {
		t.Error("Contains wrong")
	}
}

func TestRelationAddArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch must panic")
		}
	}()
	NewRelation(span.NewVarList("x")).Add(span.Tuple{sp(1, 1), sp(2, 2)})
}

func TestProject(t *testing.T) {
	r := FromTuples(span.NewVarList("x", "y"), []span.Tuple{
		{sp(1, 2), sp(3, 4)},
		{sp(1, 2), sp(5, 6)},
		{sp(7, 8), sp(3, 4)},
	})
	p := r.Project(span.NewVarList("x"))
	if p.Len() != 2 {
		t.Errorf("projection has %d tuples, want 2 (dedup)", p.Len())
	}
	all := r.Project(span.NewVarList("y", "x"))
	if all.Len() != 3 {
		t.Errorf("identity projection lost tuples: %d", all.Len())
	}
	empty := r.Project(nil)
	if empty.Len() != 1 || len(empty.Vars) != 0 {
		t.Errorf("Boolean projection: len=%d vars=%v", empty.Len(), empty.Vars)
	}
}

func TestUnionSchemaCheck(t *testing.T) {
	a := NewRelation(span.NewVarList("x"))
	b := NewRelation(span.NewVarList("y"))
	if _, err := a.Union(b); err == nil {
		t.Error("union with different schemas must fail")
	}
	c := FromTuples(span.NewVarList("x"), []span.Tuple{{sp(1, 1)}})
	d := FromTuples(span.NewVarList("x"), []span.Tuple{{sp(1, 1)}, {sp(2, 2)}})
	u, err := c.Union(d)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 2 {
		t.Errorf("union len = %d, want 2", u.Len())
	}
}

func TestJoinSharedVariable(t *testing.T) {
	// R(x,y) ⋈ S(y,z)
	r := FromTuples(span.NewVarList("x", "y"), []span.Tuple{
		{sp(1, 2), sp(2, 3)},
		{sp(1, 2), sp(3, 4)},
	})
	s := FromTuples(span.NewVarList("y", "z"), []span.Tuple{
		{sp(2, 3), sp(5, 6)},
		{sp(2, 3), sp(6, 7)},
		{sp(9, 9), sp(5, 6)},
	})
	j := Join(r, s)
	if !j.Vars.Equal(span.NewVarList("x", "y", "z")) {
		t.Fatalf("join vars %v", j.Vars)
	}
	if j.Len() != 2 {
		t.Fatalf("join has %d tuples, want 2:\n%s", j.Len(), j)
	}
	for _, tu := range j.Tuples {
		if tu[j.Vars.Index("y")] != sp(2, 3) {
			t.Errorf("join leaked non-matching tuple %v", tu)
		}
	}
}

func TestJoinDisjointIsCrossProduct(t *testing.T) {
	r := FromTuples(span.NewVarList("x"), []span.Tuple{{sp(1, 1)}, {sp(2, 2)}})
	s := FromTuples(span.NewVarList("y"), []span.Tuple{{sp(3, 3)}, {sp(4, 4)}, {sp(5, 5)}})
	j := Join(r, s)
	if j.Len() != 6 {
		t.Errorf("cross product has %d tuples, want 6", j.Len())
	}
}

func TestJoinWithBooleanRelation(t *testing.T) {
	r := FromTuples(span.NewVarList("x"), []span.Tuple{{sp(1, 1)}})
	truthy := FromTuples(nil, []span.Tuple{{}})
	falsy := NewRelation(nil)
	if j := Join(r, truthy); j.Len() != 1 {
		t.Errorf("join with TRUE: %d", j.Len())
	}
	if j := Join(r, falsy); j.Len() != 0 {
		t.Errorf("join with FALSE: %d", j.Len())
	}
}

func TestSemiJoin(t *testing.T) {
	r := FromTuples(span.NewVarList("x", "y"), []span.Tuple{
		{sp(1, 1), sp(2, 2)},
		{sp(3, 3), sp(4, 4)},
	})
	s := FromTuples(span.NewVarList("y", "z"), []span.Tuple{
		{sp(2, 2), sp(9, 9)},
	})
	sj := SemiJoin(r, s)
	if sj.Len() != 1 || sj.Tuples[0][0] != sp(1, 1) {
		t.Errorf("semijoin wrong: %v", sj)
	}
	if !sj.Vars.Equal(r.Vars) {
		t.Errorf("semijoin changed schema: %v", sj.Vars)
	}
}

func TestSelectStringEq(t *testing.T) {
	s := "abab"
	r := FromTuples(span.NewVarList("x", "y"), []span.Tuple{
		{sp(1, 3), sp(3, 5)}, // "ab" = "ab"
		{sp(1, 3), sp(2, 4)}, // "ab" != "ba"
		{sp(1, 1), sp(5, 5)}, // "" = ""
	})
	sel, err := r.SelectStringEq(s, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if sel.Len() != 2 {
		t.Errorf("selection has %d tuples, want 2:\n%s", sel.Len(), sel)
	}
	if _, err := r.SelectStringEq(s, "x", "nope"); err == nil {
		t.Error("unknown variable must fail")
	}
}

func TestJoinAgainstNestedLoop(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		v1 := span.NewVarList("x", "y")
		v2 := span.NewVarList("y", "z")
		a := NewRelation(v1)
		b := NewRelation(v2)
		for i := 0; i < r.Intn(20); i++ {
			a.Add(span.Tuple{sp(r.Intn(3)+1, 4), sp(r.Intn(3)+1, 4)})
		}
		for i := 0; i < r.Intn(20); i++ {
			b.Add(span.Tuple{sp(r.Intn(3)+1, 4), sp(r.Intn(3)+1, 4)})
		}
		got := Join(a, b)
		// Nested-loop reference.
		want := 0
		for _, ta := range a.Tuples {
			for _, tb := range b.Tuples {
				if ta[1] == tb[0] {
					want++
				}
			}
		}
		if got.Len() != want {
			t.Fatalf("join size %d, nested loop says %d", got.Len(), want)
		}
	}
}

func TestSortDeterministic(t *testing.T) {
	r := FromTuples(span.NewVarList("x"), []span.Tuple{{sp(3, 3)}, {sp(1, 1)}, {sp(2, 2)}})
	r.Sort()
	for i := 0; i+1 < len(r.Tuples); i++ {
		if r.Tuples[i].Compare(r.Tuples[i+1]) >= 0 {
			t.Fatalf("not sorted at %d", i)
		}
	}
}
