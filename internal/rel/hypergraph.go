package rel

import (
	"spanjoin/internal/span"
)

// Hypergraph is the query hypergraph of a CQ: one (hyper)edge per atom,
// holding the atom's variable set (§2.3).
type Hypergraph struct {
	Edges []span.VarList
}

// JoinTree is the result of a successful GYO reduction: a rooted join tree
// over the atom indices.
type JoinTree struct {
	// Parent[i] is the parent atom of atom i, or -1 for the root.
	Parent []int
	// Order lists non-root atoms in ear-removal order (leaves towards the
	// root): processing Order forward gives a valid bottom-up pass.
	Order []int
	// Root is the root atom index.
	Root int
}

// IsAcyclic tests alpha-acyclicity with the GYO ear-removal algorithm and,
// on success, returns a join tree. An edge E is an ear with witness F ≠ E
// when every vertex of E is either exclusive to E or contained in F.
func (h *Hypergraph) IsAcyclic() (*JoinTree, bool) {
	n := len(h.Edges)
	if n == 0 {
		return &JoinTree{Root: -1}, true
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var order []int
	remaining := n
	for remaining > 1 {
		removed := false
		for e := 0; e < n && !removed; e++ {
			if !alive[e] {
				continue
			}
			for f := 0; f < n; f++ {
				if f == e || !alive[f] {
					continue
				}
				if isEar(h, e, f, alive) {
					alive[e] = false
					parent[e] = f
					order = append(order, e)
					remaining--
					removed = true
					break
				}
			}
		}
		if !removed {
			return nil, false
		}
	}
	root := -1
	for i := range alive {
		if alive[i] {
			root = i
		}
	}
	return &JoinTree{Parent: parent, Order: order, Root: root}, true
}

// isEar reports whether edge e is an ear with witness f: every vertex of e
// occurs only in e (among alive edges) or belongs to f.
func isEar(h *Hypergraph, e, f int, alive []bool) bool {
	for _, v := range h.Edges[e] {
		if h.Edges[f].Contains(v) {
			continue
		}
		for g := range h.Edges {
			if g != e && alive[g] && h.Edges[g].Contains(v) {
				return false
			}
		}
	}
	return true
}

// IsGammaAcyclic tests gamma-acyclicity by searching for a gamma-cycle
// (Fagin 1983): a sequence (S₁, x₁, S₂, x₂, …, S_m, x_m, S₁) with m ≥ 3,
// distinct edges S_i and distinct vertices x_i such that x_i ∈ S_i ∩ S_{i+1},
// and for i < m, x_i belongs to no other edge of the sequence. Gamma-acyclic
// hypergraphs are exactly those with no gamma-cycle; the class is strictly
// inside the alpha-acyclic one (§2.3).
//
// The search is exponential in the number of edges and meant for
// query-sized hypergraphs (the paper's CQs), not data.
func (h *Hypergraph) IsGammaAcyclic() bool {
	n := len(h.Edges)
	if n < 3 {
		return true
	}
	// Enumerate simple cycles of edges with distinct connecting vertices.
	var seqEdges []int
	var seqVars []string
	usedEdge := make([]bool, n)
	usedVar := map[string]bool{}

	var found bool
	var dfs func(cur int, start int)
	checkCycle := func(start int) bool {
		m := len(seqEdges)
		if m < 3 {
			return false
		}
		// Closing vertex x_m ∈ S_m ∩ S_1, distinct from the others; x_m may
		// lie in other edges of the sequence.
		for _, xm := range h.Edges[seqEdges[m-1]].Intersect(h.Edges[start]) {
			if usedVar[xm] {
				continue
			}
			// Verify the side condition for x_1..x_{m-1}.
			ok := true
			for i := 0; i < m-1 && ok; i++ {
				for j := 0; j < m; j++ {
					if j == i || j == i+1 {
						continue
					}
					if h.Edges[seqEdges[j]].Contains(seqVars[i]) {
						ok = false
						break
					}
				}
			}
			if ok {
				return true
			}
		}
		return false
	}
	dfs = func(cur, start int) {
		if found {
			return
		}
		if checkCycle(start) {
			found = true
			return
		}
		for next := 0; next < n; next++ {
			if usedEdge[next] {
				continue
			}
			for _, x := range h.Edges[cur].Intersect(h.Edges[next]) {
				if usedVar[x] {
					continue
				}
				usedEdge[next] = true
				usedVar[x] = true
				seqEdges = append(seqEdges, next)
				seqVars = append(seqVars, x)
				dfs(next, start)
				seqEdges = seqEdges[:len(seqEdges)-1]
				seqVars = seqVars[:len(seqVars)-1]
				usedEdge[next] = false
				usedVar[x] = false
				if found {
					return
				}
			}
		}
	}
	for start := 0; start < n && !found; start++ {
		usedEdge[start] = true
		seqEdges = append(seqEdges, start)
		dfs(start, start)
		seqEdges = seqEdges[:0]
		usedEdge[start] = false
	}
	return !found
}

// Yannakakis evaluates an acyclic join with full semijoin reduction and
// bottom-up joins, projecting the final result onto output (Yannakakis
// 1981, the tractable case of §3.2). rels[i] must be the relation of atom i.
func Yannakakis(tree *JoinTree, rels []*Relation, output span.VarList) *Relation {
	if tree.Root < 0 {
		return NewRelation(output)
	}
	work := make([]*Relation, len(rels))
	copy(work, rels)

	// Bottom-up semijoin pass (leaves toward root).
	for _, e := range tree.Order {
		p := tree.Parent[e]
		work[p] = SemiJoin(work[p], work[e])
	}
	// Top-down semijoin pass (root toward leaves).
	for i := len(tree.Order) - 1; i >= 0; i-- {
		e := tree.Order[i]
		p := tree.Parent[e]
		work[e] = SemiJoin(work[e], work[p])
	}
	// Bottom-up joins, carrying only output variables upward.
	for _, e := range tree.Order {
		p := tree.Parent[e]
		joined := Join(work[p], work[e])
		keep := work[p].Vars.Union(joined.Vars.Intersect(output))
		work[p] = joined.Project(keep)
	}
	return work[tree.Root].Project(output)
}

// YannakakisBoolean decides non-emptiness of the acyclic join with the
// bottom-up semijoin pass only — polynomial total time (linear in the sum
// of relation sizes up to hashing).
func YannakakisBoolean(tree *JoinTree, rels []*Relation) bool {
	if tree.Root < 0 {
		return true
	}
	work := make([]*Relation, len(rels))
	copy(work, rels)
	for _, e := range tree.Order {
		p := tree.Parent[e]
		work[p] = SemiJoin(work[p], work[e])
	}
	return !work[tree.Root].IsEmpty()
}

// JoinAllGreedy joins the relations smallest-first — the fallback plan for
// cyclic CQs (worst-case exponential, as Thm 3.1/3.2 say is unavoidable).
func JoinAllGreedy(rels []*Relation) *Relation {
	if len(rels) == 0 {
		return NewRelation(nil)
	}
	work := append([]*Relation(nil), rels...)
	for len(work) > 1 {
		// Pick the pair with the smallest estimated output (|r|·|o|).
		bi, bj := 0, 1
		best := -1
		for i := 0; i < len(work); i++ {
			for j := i + 1; j < len(work); j++ {
				est := work[i].Len() * work[j].Len()
				// Prefer joins that share variables (selective).
				if len(work[i].Vars.Intersect(work[j].Vars)) == 0 {
					est = est*4 + 1
				}
				if best < 0 || est < best {
					best, bi, bj = est, i, j
				}
			}
		}
		joined := Join(work[bi], work[bj])
		work[bj] = work[len(work)-1]
		work = work[:len(work)-1]
		work[bi] = joined
	}
	return work[0]
}
