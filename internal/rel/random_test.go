package rel

import (
	"fmt"
	"math/rand"
	"testing"

	"spanjoin/internal/span"
)

// randomAcyclicHypergraph builds a random join tree and returns its
// hypergraph: node 0 is the root; every other node shares at least one
// variable with its parent.
func randomAcyclicHypergraph(r *rand.Rand, atoms int) *Hypergraph {
	h := &Hypergraph{}
	varID := 0
	fresh := func() string { varID++; return fmt.Sprintf("v%d", varID) }
	// Root edge with 1-2 variables.
	root := []string{fresh()}
	if r.Intn(2) == 0 {
		root = append(root, fresh())
	}
	h.Edges = append(h.Edges, span.NewVarList(root...))
	for i := 1; i < atoms; i++ {
		parent := h.Edges[r.Intn(len(h.Edges))]
		shared := parent[r.Intn(len(parent))]
		vars := []string{shared}
		for k := r.Intn(2); k > 0; k-- {
			vars = append(vars, fresh())
		}
		h.Edges = append(h.Edges, span.NewVarList(vars...))
	}
	return h
}

func randomRelations(r *rand.Rand, h *Hypergraph, maxTuples int) []*Relation {
	rels := make([]*Relation, len(h.Edges))
	for i, vars := range h.Edges {
		rels[i] = NewRelation(vars)
		for k := 0; k < r.Intn(maxTuples)+1; k++ {
			tu := make(span.Tuple, len(vars))
			for j := range tu {
				a := r.Intn(3) + 1
				tu[j] = span.Span{Start: a, End: a + r.Intn(3)}
			}
			rels[i].Add(tu)
		}
	}
	return rels
}

// TestRandomAcyclicYannakakis: on random join trees with random data,
// Yannakakis must agree with greedy hash joins for every projection.
func TestRandomAcyclicYannakakis(t *testing.T) {
	r := rand.New(rand.NewSource(606))
	for trial := 0; trial < 120; trial++ {
		h := randomAcyclicHypergraph(r, r.Intn(5)+1)
		tree, ok := h.IsAcyclic()
		if !ok {
			t.Fatalf("trial %d: constructed hypergraph not recognized as acyclic: %v", trial, h.Edges)
		}
		rels := randomRelations(r, h, 12)
		// All variables.
		var all span.VarList
		for _, e := range h.Edges {
			all = all.Union(e)
		}
		outputs := []span.VarList{all, nil}
		if len(all) > 1 {
			outputs = append(outputs, span.NewVarList(all[0], all[len(all)-1]))
		}
		want := JoinAllGreedy(rels)
		for _, out := range outputs {
			got := Yannakakis(tree, rels, out)
			ref := want.Project(out)
			if got.Len() != ref.Len() {
				t.Fatalf("trial %d output %v: yannakakis %d vs greedy %d (edges %v)",
					trial, out, got.Len(), ref.Len(), h.Edges)
			}
			for _, tu := range ref.Tuples {
				if !got.Contains(tu) {
					t.Fatalf("trial %d: missing %v", trial, tu)
				}
			}
		}
		if YannakakisBoolean(tree, rels) != !want.IsEmpty() {
			t.Fatalf("trial %d: boolean disagreement", trial)
		}
	}
}

// TestRandomHypergraphAcyclicityInvariants: gamma-acyclic ⇒ alpha-acyclic
// on random hypergraphs, and duplicating an edge never changes either.
func TestRandomHypergraphAcyclicityInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(607))
	names := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 300; trial++ {
		h := &Hypergraph{}
		atoms := r.Intn(4) + 1
		for i := 0; i < atoms; i++ {
			k := r.Intn(3) + 1
			var vs []string
			for j := 0; j < k; j++ {
				vs = append(vs, names[r.Intn(len(names))])
			}
			h.Edges = append(h.Edges, span.NewVarList(vs...))
		}
		_, alpha := h.IsAcyclic()
		gamma := h.IsGammaAcyclic()
		if gamma && !alpha {
			t.Fatalf("trial %d: gamma-acyclic but alpha-cyclic: %v", trial, h.Edges)
		}
		// Duplicate an edge: acyclicity class must not change.
		dup := &Hypergraph{Edges: append(append([]span.VarList{}, h.Edges...), h.Edges[0])}
		_, alpha2 := dup.IsAcyclic()
		gamma2 := dup.IsGammaAcyclic()
		if alpha != alpha2 || gamma != gamma2 {
			t.Fatalf("trial %d: duplicating an edge changed acyclicity (%v/%v -> %v/%v): %v",
				trial, alpha, gamma, alpha2, gamma2, h.Edges)
		}
	}
}

// TestSemiJoinProperties: r ⋉ o ⊆ r; idempotent; empty o empties r when
// schemas intersect... and keeps r when they don't (cartesian semantics).
func TestSemiJoinProperties(t *testing.T) {
	r := rand.New(rand.NewSource(608))
	for trial := 0; trial < 100; trial++ {
		a := NewRelation(span.NewVarList("x", "y"))
		b := NewRelation(span.NewVarList("y", "z"))
		for i := 0; i < r.Intn(10); i++ {
			a.Add(span.Tuple{sp(r.Intn(3)+1, 4), sp(r.Intn(3)+1, 4)})
		}
		for i := 0; i < r.Intn(10); i++ {
			b.Add(span.Tuple{sp(r.Intn(3)+1, 4), sp(r.Intn(3)+1, 4)})
		}
		sj := SemiJoin(a, b)
		if sj.Len() > a.Len() {
			t.Fatal("semijoin grew")
		}
		for _, tu := range sj.Tuples {
			if !a.Contains(tu) {
				t.Fatal("semijoin invented a tuple")
			}
		}
		if SemiJoin(sj, b).Len() != sj.Len() {
			t.Fatal("semijoin not idempotent")
		}
		// Agreement with join-then-project.
		jp := Join(a, b).Project(a.Vars)
		if jp.Len() != sj.Len() {
			t.Fatalf("semijoin %d != π(join) %d", sj.Len(), jp.Len())
		}
	}
}

// TestSemiJoinDisjointSchemas: with no shared variables, r ⋉ o is r if o is
// nonempty and ∅ if o is empty.
func TestSemiJoinDisjointSchemas(t *testing.T) {
	a := FromTuples(span.NewVarList("x"), []span.Tuple{{sp(1, 2)}, {sp(2, 3)}})
	nonempty := FromTuples(span.NewVarList("z"), []span.Tuple{{sp(1, 1)}})
	empty := NewRelation(span.NewVarList("z"))
	if SemiJoin(a, nonempty).Len() != 2 {
		t.Error("semijoin with nonempty disjoint relation should keep everything")
	}
	if SemiJoin(a, empty).Len() != 0 {
		t.Error("semijoin with empty relation should drop everything")
	}
}
