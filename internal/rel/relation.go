// Package rel is the relational engine behind the paper's "canonical
// relational evaluation" (§3.2–3.3): span relations with projection, natural
// join, union and string-equality selection, plus hypergraph acyclicity
// tests (GYO for alpha-acyclicity, gamma-cycle detection for
// gamma-acyclicity) and Yannakakis' algorithm over join trees.
package rel

import (
	"fmt"
	"sort"
	"strings"

	"spanjoin/internal/span"
)

// Relation is a set of (V,s)-tuples over a fixed variable list. Tuples are
// kept duplicate free; column k holds the span of Vars[k].
type Relation struct {
	Vars   span.VarList
	Tuples []span.Tuple

	index map[string]bool // tuple key → present
}

// NewRelation returns an empty relation over vars.
func NewRelation(vars span.VarList) *Relation {
	return &Relation{Vars: vars, index: map[string]bool{}}
}

// FromTuples builds a relation, deduplicating the given tuples.
func FromTuples(vars span.VarList, tuples []span.Tuple) *Relation {
	r := NewRelation(vars)
	for _, t := range tuples {
		r.Add(t)
	}
	return r
}

// Add inserts a tuple if not already present and reports whether it was new.
// The tuple must have exactly len(Vars) columns.
func (r *Relation) Add(t span.Tuple) bool {
	if len(t) != len(r.Vars) {
		panic(fmt.Sprintf("rel: tuple arity %d != |vars| %d", len(t), len(r.Vars)))
	}
	if r.index == nil {
		r.index = map[string]bool{}
		for _, u := range r.Tuples {
			r.index[u.Key()] = true
		}
	}
	k := t.Key()
	if r.index[k] {
		return false
	}
	r.index[k] = true
	r.Tuples = append(r.Tuples, t.Clone())
	return true
}

// Contains reports membership.
func (r *Relation) Contains(t span.Tuple) bool {
	if r.index == nil {
		r.index = map[string]bool{}
		for _, u := range r.Tuples {
			r.index[u.Key()] = true
		}
	}
	return r.index[t.Key()]
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// IsEmpty reports whether the relation has no tuples.
func (r *Relation) IsEmpty() bool { return len(r.Tuples) == 0 }

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.Vars)
	for _, t := range r.Tuples {
		out.Add(t)
	}
	return out
}

// Sort orders tuples by span.Tuple.Compare (deterministic output order).
func (r *Relation) Sort() {
	sort.Slice(r.Tuples, func(i, j int) bool { return r.Tuples[i].Compare(r.Tuples[j]) < 0 })
}

// Project computes π_keep(r), deduplicating.
func (r *Relation) Project(keep span.VarList) *Relation {
	kept := r.Vars.Intersect(keep)
	idx := make([]int, len(kept))
	for i, v := range kept {
		idx[i] = r.Vars.Index(v)
	}
	out := NewRelation(kept)
	for _, t := range r.Tuples {
		p := make(span.Tuple, len(kept))
		for i, k := range idx {
			p[i] = t[k]
		}
		out.Add(p)
	}
	return out
}

// Union computes r ∪ o; both must have identical variable lists.
func (r *Relation) Union(o *Relation) (*Relation, error) {
	if !r.Vars.Equal(o.Vars) {
		return nil, fmt.Errorf("rel: union requires identical schemas, got %v and %v", r.Vars, o.Vars)
	}
	out := r.Clone()
	for _, t := range o.Tuples {
		out.Add(t)
	}
	return out, nil
}

// Join computes the natural join r ⋈ o with a hash join on the shared
// variables.
func Join(r, o *Relation) *Relation {
	shared := r.Vars.Intersect(o.Vars)
	joint := r.Vars.Union(o.Vars)
	out := NewRelation(joint)

	// Build on the smaller side.
	build, probe := r, o
	if o.Len() < r.Len() {
		build, probe = o, r
	}
	bIdx := make([]int, len(shared))
	pIdx := make([]int, len(shared))
	for i, v := range shared {
		bIdx[i] = build.Vars.Index(v)
		pIdx[i] = probe.Vars.Index(v)
	}
	ht := make(map[string][]span.Tuple)
	for _, t := range build.Tuples {
		k := sharedKey(t, bIdx)
		ht[k] = append(ht[k], t)
	}
	jointFromBuild := make([]int, len(joint))
	jointFromProbe := make([]int, len(joint))
	for i, v := range joint {
		jointFromBuild[i] = build.Vars.Index(v)
		jointFromProbe[i] = probe.Vars.Index(v)
	}
	for _, pt := range probe.Tuples {
		for _, bt := range ht[sharedKey(pt, pIdx)] {
			tu := make(span.Tuple, len(joint))
			for i := range joint {
				if k := jointFromProbe[i]; k >= 0 {
					tu[i] = pt[k]
				} else {
					tu[i] = bt[jointFromBuild[i]]
				}
			}
			out.Add(tu)
		}
	}
	return out
}

// SemiJoin reduces r to the tuples that join with at least one tuple of o
// (r ⋉ o). It returns a new relation over r's schema.
func SemiJoin(r, o *Relation) *Relation {
	shared := r.Vars.Intersect(o.Vars)
	rIdx := make([]int, len(shared))
	oIdx := make([]int, len(shared))
	for i, v := range shared {
		rIdx[i] = r.Vars.Index(v)
		oIdx[i] = o.Vars.Index(v)
	}
	keys := make(map[string]bool, o.Len())
	for _, t := range o.Tuples {
		keys[sharedKey(t, oIdx)] = true
	}
	out := NewRelation(r.Vars)
	for _, t := range r.Tuples {
		if keys[sharedKey(t, rIdx)] {
			out.Add(t)
		}
	}
	return out
}

// SelectStringEq keeps the tuples where the variables x and y span equal
// substrings of s (the paper's ζ= selection: substring equality, not span
// equality).
func (r *Relation) SelectStringEq(s, x, y string) (*Relation, error) {
	xi := r.Vars.Index(x)
	yi := r.Vars.Index(y)
	if xi < 0 || yi < 0 {
		return nil, fmt.Errorf("rel: ζ= on unknown variable (%s, %s) over %v", x, y, r.Vars)
	}
	out := NewRelation(r.Vars)
	for _, t := range r.Tuples {
		if t[xi].Substr(s) == t[yi].Substr(s) {
			out.Add(t)
		}
	}
	return out, nil
}

func sharedKey(t span.Tuple, idx []int) string {
	var sb strings.Builder
	for _, k := range idx {
		fmt.Fprintf(&sb, "%d,%d;", t[k].Start, t[k].End)
	}
	return sb.String()
}

// String renders the relation for debugging.
func (r *Relation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%v (%d tuples)\n", r.Vars, r.Len())
	for _, t := range r.Tuples {
		sb.WriteString("  " + t.Format(r.Vars) + "\n")
	}
	return sb.String()
}
