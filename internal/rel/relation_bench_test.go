package rel

import (
	"math/rand"
	"testing"

	"spanjoin/internal/span"
)

func benchRelations(n int) (*Relation, *Relation) {
	r := rand.New(rand.NewSource(1))
	a := NewRelation(span.NewVarList("x", "y"))
	b := NewRelation(span.NewVarList("y", "z"))
	for i := 0; i < n; i++ {
		a.Add(span.Tuple{sp(r.Intn(50)+1, 60), sp(r.Intn(50)+1, 60)})
		b.Add(span.Tuple{sp(r.Intn(50)+1, 60), sp(r.Intn(50)+1, 60)})
	}
	return a, b
}

func BenchmarkHashJoin(b *testing.B) {
	x, y := benchRelations(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Join(x, y)
	}
}

func BenchmarkSemiJoin(b *testing.B) {
	x, y := benchRelations(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SemiJoin(x, y)
	}
}

func BenchmarkProjectDedup(b *testing.B) {
	x, _ := benchRelations(1000)
	keep := span.NewVarList("x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Project(keep)
	}
}
