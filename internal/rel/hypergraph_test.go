package rel

import (
	"math/rand"
	"testing"

	"spanjoin/internal/span"
)

func hg(edges ...[]string) *Hypergraph {
	h := &Hypergraph{}
	for _, e := range edges {
		h.Edges = append(h.Edges, span.NewVarList(e...))
	}
	return h
}

func TestAcyclicityClassics(t *testing.T) {
	cases := []struct {
		name  string
		h     *Hypergraph
		alpha bool
		gamma bool
	}{
		{"single edge", hg([]string{"x", "y"}), true, true},
		{"chain", hg([]string{"x", "y"}, []string{"y", "z"}, []string{"z", "w"}), true, true},
		{"star", hg([]string{"x", "a"}, []string{"x", "b"}, []string{"x", "c"}), true, true},
		{"triangle", hg([]string{"x", "y"}, []string{"y", "z"}, []string{"z", "x"}), false, false},
		// Alpha-acyclic but gamma-cyclic: {ab, bc, abc}.
		{"covered triangle edge", hg([]string{"a", "b"}, []string{"b", "c"}, []string{"a", "b", "c"}), true, false},
		// Covered full triangle: alpha-acyclic, gamma-cyclic.
		{"covered triangle", hg([]string{"x", "y"}, []string{"y", "z"}, []string{"z", "x"}, []string{"x", "y", "z"}), true, false},
		{"duplicate edges", hg([]string{"x", "y"}, []string{"x", "y"}), true, true},
		{"disconnected", hg([]string{"x", "y"}, []string{"a", "b"}), true, true},
		{"empty", hg(), true, true},
		// 4-cycle: alpha-cyclic.
		{"square", hg([]string{"a", "b"}, []string{"b", "c"}, []string{"c", "d"}, []string{"d", "a"}), false, false},
	}
	for _, tc := range cases {
		_, alpha := tc.h.IsAcyclic()
		if alpha != tc.alpha {
			t.Errorf("%s: IsAcyclic = %v, want %v", tc.name, alpha, tc.alpha)
		}
		if gamma := tc.h.IsGammaAcyclic(); gamma != tc.gamma {
			t.Errorf("%s: IsGammaAcyclic = %v, want %v", tc.name, gamma, tc.gamma)
		}
		if tc.gamma && !tc.alpha {
			t.Errorf("%s: gamma-acyclic must imply alpha-acyclic", tc.name)
		}
	}
}

func TestJoinTreeStructure(t *testing.T) {
	h := hg([]string{"x", "y"}, []string{"y", "z"}, []string{"z", "w"})
	tree, ok := h.IsAcyclic()
	if !ok {
		t.Fatal("chain should be acyclic")
	}
	if len(tree.Order) != 2 {
		t.Fatalf("order has %d entries, want 2", len(tree.Order))
	}
	// Every non-root node must have a parent sharing its connecting vars.
	for _, e := range tree.Order {
		p := tree.Parent[e]
		if p < 0 {
			t.Fatalf("ordered node %d has no parent", e)
		}
	}
}

// yannakakisCase builds a chain R1(x,y) ⋈ R2(y,z) ⋈ R3(z,w) with random
// data and compares Yannakakis against the greedy join.
func TestYannakakisAgainstGreedy(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	h := hg([]string{"x", "y"}, []string{"y", "z"}, []string{"z", "w"})
	tree, ok := h.IsAcyclic()
	if !ok {
		t.Fatal("chain should be acyclic")
	}
	for trial := 0; trial < 30; trial++ {
		rels := make([]*Relation, 3)
		for i, vs := range h.Edges {
			rels[i] = NewRelation(vs)
			for k := 0; k < r.Intn(15)+1; k++ {
				rels[i].Add(span.Tuple{sp(r.Intn(4)+1, 5), sp(r.Intn(4)+1, 5)})
			}
		}
		for _, output := range []span.VarList{
			span.NewVarList("x", "y", "z", "w"),
			span.NewVarList("x", "w"),
			span.NewVarList("y"),
			nil,
		} {
			got := Yannakakis(tree, rels, output)
			want := JoinAllGreedy(rels).Project(output)
			if got.Len() != want.Len() {
				t.Fatalf("output %v: yannakakis %d tuples, greedy %d", output, got.Len(), want.Len())
			}
			for _, tu := range want.Tuples {
				if !got.Contains(tu) {
					t.Fatalf("output %v: missing tuple %v", output, tu)
				}
			}
		}
		// Boolean agreement.
		full := JoinAllGreedy(rels)
		if YannakakisBoolean(tree, rels) != !full.IsEmpty() {
			t.Fatal("Boolean Yannakakis disagrees with full join")
		}
	}
}

func TestYannakakisStarQuery(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	h := hg([]string{"x", "a"}, []string{"x", "b"}, []string{"x", "c"})
	tree, ok := h.IsAcyclic()
	if !ok {
		t.Fatal("star should be acyclic")
	}
	rels := make([]*Relation, 3)
	for i, vs := range h.Edges {
		rels[i] = NewRelation(vs)
		for k := 0; k < 10; k++ {
			rels[i].Add(span.Tuple{sp(r.Intn(3)+1, 5), sp(r.Intn(3)+1, 5)})
		}
	}
	got := Yannakakis(tree, rels, span.NewVarList("a", "b", "c"))
	want := JoinAllGreedy(rels).Project(span.NewVarList("a", "b", "c"))
	if got.Len() != want.Len() {
		t.Fatalf("star query: %d vs %d", got.Len(), want.Len())
	}
}

func TestGreedyJoinEmptyInput(t *testing.T) {
	if r := JoinAllGreedy(nil); r.Len() != 0 {
		t.Error("empty join list should give empty boolean relation")
	}
}
