// Package oracle provides brute-force reference evaluators for regex
// formulas and vset-automata, implemented directly from the ref-word
// definitions of the paper (§2.2) and deliberately sharing no code with the
// fast paths (no variable configurations, no layered graphs). The test
// suites compare every production algorithm against these oracles.
//
// Complexity is exponential in the number of variables and polynomial of
// high degree in |s|; oracles are for small inputs only.
package oracle

import (
	"sort"

	"spanjoin/internal/refword"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// EvalFormula computes [[α]](s) by enumerating every (Vars(α), s)-tuple and
// every interleaving ref-word for it, testing membership in R(α) with a
// memoized structural matcher. Tuples are returned sorted by span.Compare.
func EvalFormula(f *rgx.Formula, s string) []span.Tuple {
	var out []span.Tuple
	m := newMatcher(f.Root)
	forEachTuple(len(s), len(f.Vars), func(t span.Tuple) {
		for _, w := range refword.Interleavings(s, f.Vars, t) {
			if m.matches(w) {
				out = append(out, t.Clone())
				break
			}
		}
	})
	SortTuples(out)
	return out
}

// EvalVSA computes [[A]](s) by enumerating tuples and interleavings and
// testing ref-word acceptance with a plain NFA subset simulation over the
// extended alphabet Σ ∪ Γ_V.
func EvalVSA(a *vsa.VSA, s string) []span.Tuple {
	var out []span.Tuple
	forEachTuple(len(s), len(a.Vars), func(t span.Tuple) {
		for _, w := range refword.Interleavings(s, a.Vars, t) {
			if Accepts(a, w) {
				out = append(out, t.Clone())
				break
			}
		}
	})
	SortTuples(out)
	return out
}

// Accepts reports whether the vset-automaton, viewed as an NFA over
// Σ ∪ Γ_V, accepts the ref-word w.
func Accepts(a *vsa.VSA, w refword.Word) bool {
	cur := epsClosure(a, []int32{a.Init})
	for _, sym := range w {
		var next []int32
		seen := make(map[int32]bool)
		for _, q := range cur {
			for _, t := range a.Adj[q] {
				ok := false
				switch {
				case sym.Op == refword.Terminal && t.Kind == vsa.KChar:
					ok = t.Class.Contains(sym.Byte)
				case sym.Op == refword.OpenVar && t.Kind == vsa.KOpen:
					ok = a.Vars[t.Var] == sym.Var
				case sym.Op == refword.CloseVar && t.Kind == vsa.KClose:
					ok = a.Vars[t.Var] == sym.Var
				}
				if ok && !seen[t.To] {
					seen[t.To] = true
					next = append(next, t.To)
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = epsClosure(a, next)
	}
	for _, q := range cur {
		if q == a.Final {
			return true
		}
	}
	return false
}

func epsClosure(a *vsa.VSA, states []int32) []int32 {
	seen := make(map[int32]bool, len(states))
	out := append([]int32(nil), states...)
	for _, q := range states {
		seen[q] = true
	}
	for i := 0; i < len(out); i++ {
		for _, t := range a.Adj[out[i]] {
			if t.Kind == vsa.KEps && !seen[t.To] {
				seen[t.To] = true
				out = append(out, t.To)
			}
		}
	}
	return out
}

// forEachTuple enumerates every assignment of v spans over a string of
// length n — ((n+1)(n+2)/2)^v tuples.
func forEachTuple(n, v int, fn func(span.Tuple)) {
	all := span.All(n)
	t := make(span.Tuple, v)
	var rec func(int)
	rec = func(i int) {
		if i == v {
			fn(t)
			return
		}
		for _, sp := range all {
			t[i] = sp
			rec(i + 1)
		}
	}
	rec(0)
}

// SortTuples sorts tuples by span.Tuple.Compare, the canonical order used
// when comparing oracle output with production output.
func SortTuples(ts []span.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

// EqualTupleSets reports whether two tuple slices contain the same tuples,
// ignoring order and multiplicity.
func EqualTupleSets(a, b []span.Tuple) bool {
	am := map[string]bool{}
	for _, t := range a {
		am[t.Key()] = true
	}
	bm := map[string]bool{}
	for _, t := range b {
		bm[t.Key()] = true
	}
	if len(am) != len(bm) {
		return false
	}
	for k := range am {
		if !bm[k] {
			return false
		}
	}
	return true
}

// matcher decides r ∈ R(α) by memoized structural recursion over the AST
// and the ref-word interval [i, j).
type matcher struct {
	nodes []rgx.Node
	word  refword.Word
	memo  map[[3]int32]bool
}

func newMatcher(root rgx.Node) *matcher {
	m := &matcher{memo: map[[3]int32]bool{}}
	m.index(desugar(root))
	return m
}

// desugar rewrites α+ into α·α* and α? into ε ∨ α so the matcher only
// handles core constructs and every node it recurses into is indexed.
func desugar(n rgx.Node) rgx.Node {
	switch t := n.(type) {
	case rgx.Concat:
		subs := make([]rgx.Node, len(t.Subs))
		for i, c := range t.Subs {
			subs[i] = desugar(c)
		}
		return rgx.Concat{Subs: subs}
	case rgx.Alt:
		subs := make([]rgx.Node, len(t.Subs))
		for i, c := range t.Subs {
			subs[i] = desugar(c)
		}
		return rgx.Alt{Subs: subs}
	case rgx.Star:
		return rgx.Star{Sub: desugar(t.Sub)}
	case rgx.Plus:
		s := desugar(t.Sub)
		return rgx.Concat{Subs: []rgx.Node{s, rgx.Star{Sub: s}}}
	case rgx.Opt:
		return rgx.Alt{Subs: []rgx.Node{rgx.Epsilon{}, desugar(t.Sub)}}
	case rgx.Capture:
		return rgx.Capture{Var: t.Var, Sub: desugar(t.Sub)}
	}
	return n
}

func (m *matcher) index(n rgx.Node) int32 {
	id := int32(len(m.nodes))
	m.nodes = append(m.nodes, n)
	switch t := n.(type) {
	case rgx.Concat:
		for _, c := range t.Subs {
			m.index(c)
		}
	case rgx.Alt:
		for _, c := range t.Subs {
			m.index(c)
		}
	case rgx.Star:
		m.index(t.Sub)
	case rgx.Plus:
		m.index(t.Sub)
	case rgx.Opt:
		m.index(t.Sub)
	case rgx.Capture:
		m.index(t.Sub)
	}
	return id
}

// nodeID finds the index of a (sub)node; nodes were appended in preorder so
// identity is positional. We recompute by scanning — fine for oracle sizes.
func (m *matcher) nodeID(n rgx.Node) int32 {
	for i := range m.nodes {
		if sameNode(m.nodes[i], n) {
			return int32(i)
		}
	}
	panic("oracle: node not indexed")
}

func sameNode(a, b rgx.Node) bool {
	// Node values are compared structurally via interface equality where
	// possible; Concat/Alt contain slices and are compared by pointer-free
	// structural identity through String(), which is unambiguous.
	return a.String() == b.String() && typeName(a) == typeName(b)
}

func typeName(n rgx.Node) string {
	switch n.(type) {
	case rgx.Empty:
		return "Empty"
	case rgx.Epsilon:
		return "Epsilon"
	case rgx.Class:
		return "Class"
	case rgx.Concat:
		return "Concat"
	case rgx.Alt:
		return "Alt"
	case rgx.Star:
		return "Star"
	case rgx.Plus:
		return "Plus"
	case rgx.Opt:
		return "Opt"
	case rgx.Capture:
		return "Capture"
	}
	return "?"
}

func (m *matcher) matches(w refword.Word) bool {
	m.word = w
	m.memo = map[[3]int32]bool{}
	return m.gen(m.nodes[0], 0, int32(len(w)))
}

func (m *matcher) gen(n rgx.Node, i, j int32) bool {
	key := [3]int32{m.nodeID(n), i, j}
	if v, ok := m.memo[key]; ok {
		return v
	}
	m.memo[key] = false // cycle guard (Star with ε-generating sub)
	v := m.genUncached(n, i, j)
	m.memo[key] = v
	return v
}

func (m *matcher) genUncached(n rgx.Node, i, j int32) bool {
	switch t := n.(type) {
	case rgx.Empty:
		return false
	case rgx.Epsilon:
		return i == j
	case rgx.Class:
		return j == i+1 && m.word[i].Op == refword.Terminal && t.C.Contains(m.word[i].Byte)
	case rgx.Concat:
		return m.genSeq(t.Subs, i, j)
	case rgx.Alt:
		for _, c := range t.Subs {
			if m.gen(c, i, j) {
				return true
			}
		}
		return false
	case rgx.Star:
		if i == j {
			return true
		}
		for k := i + 1; k <= j; k++ {
			if m.gen(t.Sub, i, k) && m.gen(n, k, j) {
				return true
			}
		}
		return false
	case rgx.Capture:
		if j-i < 2 {
			return false
		}
		if m.word[i].Op != refword.OpenVar || m.word[i].Var != t.Var {
			return false
		}
		if m.word[j-1].Op != refword.CloseVar || m.word[j-1].Var != t.Var {
			return false
		}
		return m.gen(t.Sub, i+1, j-1)
	}
	return false
}

func (m *matcher) genSeq(subs []rgx.Node, i, j int32) bool {
	if len(subs) == 0 {
		return i == j
	}
	if len(subs) == 1 {
		return m.gen(subs[0], i, j)
	}
	for k := i; k <= j; k++ {
		if m.gen(subs[0], i, k) && m.genSeq(subs[1:], k, j) {
			return true
		}
	}
	return false
}
