package oracle

import (
	"math/rand"

	"spanjoin/internal/alphabet"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// RandomVSA generates a random small vset-automaton over the given
// variables and the alphabet {a, b}: `states` states with random character,
// ε and variable transitions. The result is usually not functional.
func RandomVSA(r *rand.Rand, vars span.VarList, states, transitions int) *vsa.VSA {
	a := &vsa.VSA{Vars: vars, Adj: make([][]vsa.Tr, states)}
	a.Init = int32(r.Intn(states))
	a.Final = int32(r.Intn(states))
	for i := 0; i < transitions; i++ {
		p := int32(r.Intn(states))
		q := int32(r.Intn(states))
		switch r.Intn(4) {
		case 0:
			a.AddChar(p, alphabet.Single('a'), q)
		case 1:
			a.AddChar(p, alphabet.Single('b'), q)
		case 2:
			if len(vars) > 0 {
				v := int32(r.Intn(len(vars)))
				if r.Intn(2) == 0 {
					a.AddOpen(p, v, q)
				} else {
					a.AddClose(p, v, q)
				}
			} else {
				a.AddEps(p, q)
			}
		default:
			a.AddEps(p, q)
		}
	}
	return a
}

// RandomFunctionalVSA generates a random *functional* vset-automaton by
// functionalizing a random one (the state × configuration product keeps
// exactly the valid ref-words, so the result is functional by
// construction). May have an empty language.
func RandomFunctionalVSA(r *rand.Rand, vars span.VarList, states, transitions int) *vsa.VSA {
	return vsa.Functionalize(RandomVSA(r, vars, states, transitions))
}
