package bitset

import (
	"math/rand"
	"testing"
)

func TestZeroUniverse(t *testing.T) {
	r := NewRow(0)
	if len(r) != 0 {
		t.Fatalf("NewRow(0) has %d words, want 0", len(r))
	}
	if r.Any() || r.Count() != 0 {
		t.Fatal("empty row should have no bits")
	}
	if got := r.NextOne(0); got != -1 {
		t.Fatalf("NextOne on empty universe = %d, want -1", got)
	}
	if out := r.AppendOnes(nil); len(out) != 0 {
		t.Fatalf("AppendOnes on empty universe = %v", out)
	}
	// Binary ops on empty rows must not panic.
	r.Or(NewRow(0))
	r.And(NewRow(0))
	r.Zero()
	if !r.Equal(NewRow(0)) {
		t.Fatal("empty rows should be equal")
	}
	m := NewMatrix(0, 0)
	if m.Rows() != 0 {
		t.Fatal("empty matrix rows")
	}
}

// TestWordBoundary65 exercises the 65-state universe where sets straddle the
// first word boundary.
func TestWordBoundary65(t *testing.T) {
	const n = 65
	r := NewRow(n)
	if len(r) != 2 {
		t.Fatalf("65 bits need 2 words, got %d", len(r))
	}
	for _, i := range []int32{0, 63, 64} {
		r.Set(i)
		if !r.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if r.Count() != 3 {
		t.Fatalf("count = %d, want 3", r.Count())
	}
	if got := r.AppendOnes(nil); len(got) != 3 || got[0] != 0 || got[1] != 63 || got[2] != 64 {
		t.Fatalf("ones = %v", got)
	}
	if got := r.NextOne(1); got != 63 {
		t.Fatalf("NextOne(1) = %d, want 63", got)
	}
	if got := r.NextOne(64); got != 64 {
		t.Fatalf("NextOne(64) = %d, want 64", got)
	}
	if got := r.NextOne(65); got != -1 {
		t.Fatalf("NextOne(65) = %d, want -1", got)
	}
	r.Clear(63)
	if r.Test(63) || !r.Test(64) {
		t.Fatal("Clear(63) touched the wrong bit")
	}
	o := NewRow(n)
	o.Set(64)
	r.AndNot(o)
	if r.Test(64) {
		t.Fatal("AndNot failed across the word boundary")
	}
}

func TestOrAndAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 63, 64, 65, 200} {
		a, b := NewRow(n), NewRow(n)
		ra, rb := make([]bool, n), make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(int32(i))
				ra[i] = true
			}
			if rng.Intn(2) == 0 {
				b.Set(int32(i))
				rb[i] = true
			}
		}
		or := NewRow(n)
		or.CopyFrom(a)
		or.Or(b)
		and := NewRow(n)
		and.CopyFrom(a)
		and.And(b)
		for i := 0; i < n; i++ {
			if or.Test(int32(i)) != (ra[i] || rb[i]) {
				t.Fatalf("n=%d or bit %d", n, i)
			}
			if and.Test(int32(i)) != (ra[i] && rb[i]) {
				t.Fatalf("n=%d and bit %d", n, i)
			}
		}
		// NextOne scan equals AppendOnes.
		var scan []int32
		for i := or.NextOne(0); i >= 0; i = or.NextOne(i + 1) {
			scan = append(scan, i)
		}
		app := or.AppendOnes(nil)
		if len(scan) != len(app) {
			t.Fatalf("n=%d scan %v vs append %v", n, scan, app)
		}
		for i := range scan {
			if scan[i] != app[i] {
				t.Fatalf("n=%d scan %v vs append %v", n, scan, app)
			}
		}
	}
}

func TestMatrixResizeReuse(t *testing.T) {
	m := NewMatrix(4, 100)
	m.Row(3).Set(99)
	m.Resize(2, 65)
	for i := 0; i < 2; i++ {
		if m.Row(i).Any() {
			t.Fatal("resize must zero reused backing")
		}
	}
	m.Row(1).Set(64)
	if !m.Row(1).Test(64) || m.Row(0).Test(64) {
		t.Fatal("row views overlap after resize")
	}
	// Growing reallocates; content again zeroed.
	m.Resize(8, 128)
	for i := 0; i < 8; i++ {
		if m.Row(i).Any() {
			t.Fatal("grown matrix not zeroed")
		}
	}
}

func TestPool(t *testing.T) {
	p := NewPool(65)
	r := p.Get()
	r.Set(64)
	p.Put(r)
	r2 := p.Get()
	if r2.Any() {
		t.Fatal("pooled row must come back zeroed")
	}
	p.Put(r2)
}
