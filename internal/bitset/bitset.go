// Package bitset provides dense word-packed bit rows and matrices used by
// the state-set hot paths of the engine: ε/variable closures, the layered
// graph construction of Theorem 3.3's enumeration, and the NFA
// cross-section. A Row packs one bit per automaton state into []uint64
// words, so unions, intersections and membership tests over state sets cost
// one machine word per 64 states instead of one branch per state.
//
// Rows over the same universe size are freely combinable; all binary
// operations require equal length (guaranteed by allocating through the same
// WordsFor/NewRow/Matrix helpers). A zero-length Row is a valid empty set.
package bitset

import (
	"math/bits"
	"sync"
)

const (
	wordBits  = 64
	wordShift = 6
	wordMask  = wordBits - 1
)

// WordsFor returns the number of uint64 words needed for n bits.
func WordsFor(n int) int { return (n + wordMask) >> wordShift }

// Row is a packed bit vector over a fixed universe 0..n-1.
type Row []uint64

// NewRow returns a zeroed row able to hold n bits.
func NewRow(n int) Row { return make(Row, WordsFor(n)) }

// Set sets bit i.
func (r Row) Set(i int32) { r[i>>wordShift] |= 1 << (uint(i) & wordMask) }

// Clear clears bit i.
func (r Row) Clear(i int32) { r[i>>wordShift] &^= 1 << (uint(i) & wordMask) }

// Test reports whether bit i is set.
func (r Row) Test(i int32) bool {
	return r[i>>wordShift]&(1<<(uint(i)&wordMask)) != 0
}

// Zero clears every bit.
func (r Row) Zero() {
	for i := range r {
		r[i] = 0
	}
}

// CopyFrom overwrites r with o (equal length).
func (r Row) CopyFrom(o Row) { copy(r, o) }

// Or unions o into r.
func (r Row) Or(o Row) {
	for i, w := range o {
		r[i] |= w
	}
}

// And intersects r with o.
func (r Row) And(o Row) {
	for i := range r {
		r[i] &= o[i]
	}
}

// AndNot removes o's bits from r.
func (r Row) AndNot(o Row) {
	for i := range r {
		r[i] &^= o[i]
	}
}

// Any reports whether any bit is set.
func (r Row) Any() bool {
	for _, w := range r {
		if w != 0 {
			return true
		}
	}
	return false
}

// Intersects reports whether r ∩ o is non-empty, without materializing the
// intersection — the word-parallel liveness test of the backward prune.
//
//spanjoin:hotpath
func (r Row) Intersects(o Row) bool {
	for i, w := range r {
		if w&o[i] != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (r Row) Count() int {
	c := 0
	for _, w := range r {
		c += bits.OnesCount64(w)
	}
	return c
}

// Equal reports whether r and o hold the same bits.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i] != o[i] {
			return false
		}
	}
	return true
}

// NextOne returns the smallest set bit ≥ from, or -1 if none.
func (r Row) NextOne(from int32) int32 {
	if from < 0 {
		from = 0
	}
	wi := int(from) >> wordShift
	if wi >= len(r) {
		return -1
	}
	w := r[wi] >> (uint(from) & wordMask)
	if w != 0 {
		return from + int32(bits.TrailingZeros64(w))
	}
	for wi++; wi < len(r); wi++ {
		if r[wi] != 0 {
			return int32(wi<<wordShift) + int32(bits.TrailingZeros64(r[wi]))
		}
	}
	return -1
}

// AppendOnes appends the indices of set bits to dst in ascending order.
func (r Row) AppendOnes(dst []int32) []int32 {
	for wi, w := range r {
		base := int32(wi << wordShift)
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// Matrix is a dense rows×n bit matrix stored in one backing slice; Row(i)
// views row i. Matrices are resizable in place so scratch matrices can be
// pooled and reused across documents of different lengths.
type Matrix struct {
	rows  int
	words int
	bits  []uint64
}

// NewMatrix returns a zeroed matrix with the given row count over an
// n-element universe.
func NewMatrix(rows, n int) *Matrix {
	m := &Matrix{}
	m.Resize(rows, n)
	return m
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Row returns row i as a Row view; mutations write through.
func (m *Matrix) Row(i int) Row {
	off := i * m.words
	return Row(m.bits[off : off+m.words : off+m.words])
}

// MulOr computes dst |= src × M over the Boolean semiring: for every set
// bit p of src it ORs row p of the matrix into dst. This is the fused
// row-times-matrix kernel of the enumerator's forward sweep — one call
// advances a whole frontier through a precomposed transition matrix with
// word operations only, no per-transition branches. src indexes the
// matrix's rows; dst must span the matrix's column universe.
//
//spanjoin:hotpath
func (m *Matrix) MulOr(dst, src Row) {
	for wi, w := range src {
		base := wi << wordShift
		for w != 0 {
			p := base + bits.TrailingZeros64(w)
			w &= w - 1
			row := m.bits[p*m.words : (p+1)*m.words]
			for k, rw := range row {
				dst[k] |= rw
			}
		}
	}
}

// CapWords reports the capacity of the backing word slice — the memory the
// matrix retains across Resize calls (pooled-scratch size accounting).
func (m *Matrix) CapWords() int { return cap(m.bits) }

// Resize reshapes the matrix to rows×n bits, zeroing all content. The
// backing slice is reused when large enough.
func (m *Matrix) Resize(rows, n int) {
	m.rows = rows
	m.words = WordsFor(n)
	need := rows * m.words
	if cap(m.bits) < need {
		m.bits = make([]uint64, need)
		return
	}
	m.bits = m.bits[:need]
	for i := range m.bits {
		m.bits[i] = 0
	}
}

// Zero clears every bit, keeping the shape.
func (m *Matrix) Zero() {
	for i := range m.bits {
		m.bits[i] = 0
	}
}

// Pool is a sync.Pool of rows for one universe size, for per-call scratch
// rows in code without a long-lived struct to hang buffers off.
type Pool struct {
	words int
	p     sync.Pool
}

// NewPool returns a pool of rows sized for n bits.
func NewPool(n int) *Pool {
	w := WordsFor(n)
	return &Pool{
		words: w,
		p:     sync.Pool{New: func() any { return make(Row, w) }},
	}
}

// Get returns a zeroed row from the pool.
func (p *Pool) Get() Row {
	r := p.p.Get().(Row)
	r.Zero()
	return r
}

// Put returns a row obtained from Get.
func (p *Pool) Put(r Row) {
	if len(r) == p.words {
		p.p.Put(r)
	}
}
