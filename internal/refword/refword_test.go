package refword

import (
	"math/rand"
	"testing"

	"spanjoin/internal/span"
)

func w(syms ...Sym) Word { return Word(syms) }

func lit(s string) []Sym {
	var out []Sym
	for i := 0; i < len(s); i++ {
		out = append(out, T(s[i]))
	}
	return out
}

func concat(parts ...[]Sym) Word {
	var out Word
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// TestExample22 reproduces Example 2.2: validity of r1..r4 for V = {x}.
func TestExample22(t *testing.T) {
	V := span.NewVarList("x")
	r1 := concat(lit("c"), []Sym{Open("x")}, lit("oo"), []Sym{Close("x")}, lit("ie"))
	r2 := w(Open("x"), Close("x"))
	r3 := w(Close("x"), Open("x"))
	r4 := w(Open("x"), T('a'), Close("x"), Open("x"), T('a'), Close("x"))
	if !r1.Valid(V) {
		t.Error("r1 should be valid")
	}
	if !r2.Valid(V) {
		t.Error("r2 should be valid")
	}
	if r3.Valid(V) {
		t.Error("r3 (close before open) should be invalid")
	}
	if r4.Valid(V) {
		t.Error("r4 (double binding) should be invalid")
	}
	// r1, r2 are not valid for V' ⊃ V: all variables must be bound.
	V2 := span.NewVarList("x", "y")
	if r1.Valid(V2) || r2.Valid(V2) {
		t.Error("valid-for must require every variable of V' to be bound")
	}
}

// TestExample23 reproduces Example 2.3: ref-words over s = cookie.
func TestExample23(t *testing.T) {
	V := span.NewVarList("x")
	r1 := concat(lit("c"), []Sym{Open("x")}, lit("oo"), []Sym{Close("x")}, lit("kie"))
	r2 := concat(lit("cookie"), []Sym{Open("x"), Close("x")})
	for _, r := range []Word{r1, r2} {
		if got := r.Clr(); got != "cookie" {
			t.Errorf("clr = %q, want cookie", got)
		}
	}
	t1, err := r1.Tuple(V)
	if err != nil {
		t.Fatal(err)
	}
	if t1[0] != (span.Span{Start: 2, End: 4}) {
		t.Errorf("µ_r1(x) = %v, want [2,4⟩", t1[0])
	}
	t2, err := r2.Tuple(V)
	if err != nil {
		t.Fatal(err)
	}
	if t2[0] != (span.Span{Start: 7, End: 7}) {
		t.Errorf("µ_r2(x) = %v, want [7,7⟩", t2[0])
	}
}

func TestClrOnTerminalsOnly(t *testing.T) {
	if got := FromString("abc").Clr(); got != "abc" {
		t.Errorf("Clr = %q", got)
	}
	if got := (Word{}).Clr(); got != "" {
		t.Errorf("Clr of empty = %q", got)
	}
}

func TestTupleRejectsInvalid(t *testing.T) {
	V := span.NewVarList("x")
	if _, err := w(Open("x")).Tuple(V); err == nil {
		t.Error("unclosed variable must be rejected")
	}
	if _, err := (Word{}).Tuple(V); err == nil {
		t.Error("unbound variable must be rejected")
	}
	if _, err := w(Open("y"), Close("y")).Tuple(V); err == nil {
		t.Error("foreign variable must be rejected")
	}
}

func TestFromTupleRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	vars := span.NewVarList("x", "y", "z")
	for i := 0; i < 500; i++ {
		n := r.Intn(6)
		s := randString(r, n)
		tu := make(span.Tuple, len(vars))
		for j := range tu {
			a := r.Intn(n+1) + 1
			tu[j] = span.Span{Start: a, End: a + r.Intn(n+2-a)}
		}
		word := FromTuple(s, vars, tu)
		if !word.Valid(vars) {
			t.Fatalf("FromTuple produced invalid word %v for %v on %q", word, tu, s)
		}
		if word.Clr() != s {
			t.Fatalf("clr mismatch: %q vs %q", word.Clr(), s)
		}
		back, err := word.Tuple(vars)
		if err != nil {
			t.Fatal(err)
		}
		if back.Compare(tu) != 0 {
			t.Fatalf("round trip: got %v, want %v (word %v)", back, tu, word)
		}
	}
}

func TestInterleavingsAllValidAndSameTuple(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	vars := span.NewVarList("x", "y")
	for i := 0; i < 300; i++ {
		n := r.Intn(4)
		s := randString(r, n)
		tu := make(span.Tuple, len(vars))
		for j := range tu {
			a := r.Intn(n+1) + 1
			tu[j] = span.Span{Start: a, End: a + r.Intn(n+2-a)}
		}
		words := Interleavings(s, vars, tu)
		if len(words) == 0 {
			t.Fatalf("no interleavings for %v on %q", tu, s)
		}
		seen := map[string]bool{}
		for _, word := range words {
			if !word.Valid(vars) {
				t.Fatalf("invalid interleaving %v for %v on %q", word, tu, s)
			}
			back, err := word.Tuple(vars)
			if err != nil {
				t.Fatal(err)
			}
			if back.Compare(tu) != 0 {
				t.Fatalf("interleaving %v decodes to %v, want %v", word, back, tu)
			}
			if seen[word.String()] {
				t.Fatalf("duplicate interleaving %v", word)
			}
			seen[word.String()] = true
		}
	}
}

func TestInterleavingsCount(t *testing.T) {
	// Two variables, both spanning [1,1⟩ on ε: the ops x⊢⊣x and y⊢⊣y can
	// interleave as xy, yx, and the two nestings — but x must open before
	// closing. Orderings of {x⊢,⊣x,y⊢,⊣y} with x⊢<⊣x and y⊢<⊣y: 4!/(2·2)=6.
	vars := span.NewVarList("x", "y")
	tu := span.Tuple{{Start: 1, End: 1}, {Start: 1, End: 1}}
	words := Interleavings("", vars, tu)
	if len(words) != 6 {
		t.Fatalf("got %d interleavings, want 6", len(words))
	}
}

func TestWordString(t *testing.T) {
	word := concat([]Sym{Open("x")}, lit("ab"), []Sym{Close("x")})
	if got := word.String(); got != "x⊢ab⊣x" {
		t.Errorf("String = %q", got)
	}
}

func randString(r *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(2))
	}
	return string(b)
}
