// Package refword implements ref-words (reference words, paper §2.2.1):
// strings over the extended alphabet Σ ∪ Γ_V, where Γ_V contains an opening
// symbol x⊢ and a closing symbol ⊣x for every variable x ∈ V.
//
// Ref-words give regex formulas and vset-automata their semantics: a valid
// ref-word r with clr(r) = s encodes the (V,s)-tuple µ_r that maps each
// variable to the span delimited by its opening and closing symbols.
package refword

import (
	"fmt"
	"strings"

	"spanjoin/internal/span"
)

// Sym is one symbol of a ref-word: either a terminal byte from Σ or a
// variable operation from Γ_V.
type Sym struct {
	// Op distinguishes the three symbol kinds.
	Op Op
	// Byte is the terminal letter when Op == Terminal.
	Byte byte
	// Var is the variable name when Op is OpenVar or CloseVar.
	Var string
}

// Op is the kind of a ref-word symbol.
type Op uint8

const (
	// Terminal is a letter of Σ.
	Terminal Op = iota
	// OpenVar is the symbol x⊢ that opens variable x.
	OpenVar
	// CloseVar is the symbol ⊣x that closes variable x.
	CloseVar
)

// Word is a ref-word: a sequence of symbols over Σ ∪ Γ_V.
type Word []Sym

// T returns a terminal symbol.
func T(b byte) Sym { return Sym{Op: Terminal, Byte: b} }

// Open returns the opening symbol x⊢.
func Open(x string) Sym { return Sym{Op: OpenVar, Var: x} }

// Close returns the closing symbol ⊣x.
func Close(x string) Sym { return Sym{Op: CloseVar, Var: x} }

// FromString builds the ref-word consisting of the terminals of s only.
func FromString(s string) Word {
	w := make(Word, len(s))
	for i := 0; i < len(s); i++ {
		w[i] = T(s[i])
	}
	return w
}

// Clr applies the clearing morphism: it erases all variable operations and
// returns the terminal string (paper: clr(r)).
func (w Word) Clr() string {
	var sb strings.Builder
	for _, sym := range w {
		if sym.Op == Terminal {
			sb.WriteByte(sym.Byte)
		}
	}
	return sb.String()
}

// Valid reports whether w is valid for the variable set vars: every variable
// is opened exactly once and closed exactly once, with the opening occurring
// before the closing (paper §2.2.1). Variables not in vars must not occur.
func (w Word) Valid(vars span.VarList) bool {
	const (
		waiting = 0
		open    = 1
		closed  = 2
	)
	state := make(map[string]int, len(vars))
	for _, sym := range w {
		switch sym.Op {
		case Terminal:
			continue
		case OpenVar:
			if !vars.Contains(sym.Var) || state[sym.Var] != waiting {
				return false
			}
			state[sym.Var] = open
		case CloseVar:
			if !vars.Contains(sym.Var) || state[sym.Var] != open {
				return false
			}
			state[sym.Var] = closed
		}
	}
	for _, x := range vars {
		if state[x] != closed {
			return false
		}
	}
	return true
}

// Tuple interprets a valid ref-word as the (V,s)-tuple µ_w over vars, where
// s = w.Clr(). For each x with factorization w = w′ · x⊢ · w_x · ⊣x · w″ the
// span is [i, j⟩ with i = |clr(w′)|+1 and j = i + |clr(w_x)|.
// It returns an error if w is not valid for vars.
func (w Word) Tuple(vars span.VarList) (span.Tuple, error) {
	if !w.Valid(vars) {
		return nil, fmt.Errorf("refword: %v is not valid for %v", w, vars)
	}
	t := make(span.Tuple, len(vars))
	pos := 1 // 1-based position of the next terminal
	for _, sym := range w {
		switch sym.Op {
		case Terminal:
			pos++
		case OpenVar:
			t[vars.Index(sym.Var)].Start = pos
		case CloseVar:
			t[vars.Index(sym.Var)].End = pos
		}
	}
	return t, nil
}

// String renders the ref-word with ⊢ and ⊣ markers, e.g. "c x⊢ oo ⊣x kie".
func (w Word) String() string {
	var sb strings.Builder
	for _, sym := range w {
		switch sym.Op {
		case Terminal:
			sb.WriteByte(sym.Byte)
		case OpenVar:
			sb.WriteString(sym.Var + "⊢")
		case CloseVar:
			sb.WriteString("⊣" + sym.Var)
		}
	}
	return sb.String()
}

// FromTuple builds a canonical valid ref-word for the given string and
// tuple: at every boundary position, closing symbols are emitted before
// opening symbols, each group in variable order. This is the inverse
// direction of Tuple (up to reordering of operations at equal boundaries).
func FromTuple(s string, vars span.VarList, t span.Tuple) Word {
	var w Word
	for pos := 1; pos <= len(s)+1; pos++ {
		for i, x := range vars {
			if t[i].End == pos && t[i].Start != pos {
				w = append(w, Close(x))
			}
		}
		// Empty spans open and close at the same boundary; emit the pair
		// adjacently so the word stays valid.
		for i, x := range vars {
			if t[i].Start == pos {
				w = append(w, Open(x))
				if t[i].End == pos {
					w = append(w, Close(x))
				}
			}
		}
		if pos <= len(s) {
			w = append(w, T(s[pos-1]))
		}
	}
	return w
}

// Interleavings returns every valid ref-word for (s, vars, t): all orderings
// of the variable operations that share a boundary position, subject to an
// open preceding its own close. The count is bounded by ∏(ops at a
// boundary)!, so this is exponential in |vars| and intended only for small
// oracle computations in tests.
func Interleavings(s string, vars span.VarList, t span.Tuple) []Word {
	type bucket struct {
		syms []Sym
	}
	buckets := make([]bucket, len(s)+2) // boundaries 1..len(s)+1
	for i, x := range vars {
		buckets[t[i].Start].syms = append(buckets[t[i].Start].syms, Open(x))
		buckets[t[i].End].syms = append(buckets[t[i].End].syms, Close(x))
	}
	results := []Word{{}}
	for pos := 1; pos <= len(s)+1; pos++ {
		perms := validPerms(buckets[pos].syms, vars)
		var next []Word
		for _, prefix := range results {
			for _, perm := range perms {
				w := append(append(Word(nil), prefix...), perm...)
				if pos <= len(s) {
					w = append(w, T(s[pos-1]))
				}
				next = append(next, w)
			}
		}
		results = next
	}
	return results
}

// validPerms enumerates the permutations of syms in which no ⊣x precedes its
// matching x⊢.
func validPerms(syms []Sym, vars span.VarList) [][]Sym {
	if len(syms) == 0 {
		return [][]Sym{nil}
	}
	var out [][]Sym
	var cur []Sym
	used := make([]bool, len(syms))
	var rec func()
	rec = func() {
		if len(cur) == len(syms) {
			if opsOrdered(cur) {
				out = append(out, append([]Sym(nil), cur...))
			}
			return
		}
		for i, s := range syms {
			if used[i] {
				continue
			}
			// Skip duplicate symbols to avoid emitting identical permutations.
			dup := false
			for j := 0; j < i; j++ {
				if !used[j] && syms[j] == s {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			used[i] = true
			cur = append(cur, s)
			rec()
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec()
	return out
}

func opsOrdered(syms []Sym) bool {
	opened := make(map[string]bool)
	for _, s := range syms {
		switch s.Op {
		case OpenVar:
			opened[s.Var] = true
		case CloseVar:
			if !opened[s.Var] {
				// The close belongs to an open at an earlier boundary, or
				// the pair is mis-ordered within this boundary. Both opens
				// and closes land in the same bucket only for empty spans,
				// so a close without a prior open in this bucket is only
				// legal if the variable's open is NOT in this bucket at all.
				// Callers pass buckets where both are present iff the span
				// is empty, so reject.
				if containsOpen(syms, s.Var) {
					return false
				}
			}
		}
	}
	return true
}

func containsOpen(syms []Sym, x string) bool {
	for _, s := range syms {
		if s.Op == OpenVar && s.Var == x {
			return true
		}
	}
	return false
}
