// Package nfa implements plain NFAs over an abstract integer alphabet and
// the cross-section enumeration of Ackerman and Shallit ("Efficient
// enumeration of words in regular languages", TCS 2009) that Theorem 3.3's
// algorithm is reduced to: given an NFA M and a length ℓ, enumerate
// L(M) ∩ Σ^ℓ in radix order with polynomial delay and no repetitions.
//
// Package enum contains a version specialized to the layered automaton A_G;
// this generic implementation serves as an independently tested substrate
// and as a cross-validation target for it.
package nfa

import (
	"fmt"
	"sort"

	"spanjoin/internal/bitset"
)

// Edge is a transition labelled with an abstract symbol id. Symbol ids
// double as the radix order: smaller id = smaller letter.
type Edge struct {
	Sym int32
	To  int32
}

// NFA is a nondeterministic finite automaton without ε-transitions over
// symbols 0..NumSyms-1.
type NFA struct {
	NumStates int
	NumSyms   int
	Start     []int32
	Final     []int32
	Adj       [][]Edge
}

// New returns an empty automaton with n states.
func New(states, syms int) *NFA {
	return &NFA{NumStates: states, NumSyms: syms, Adj: make([][]Edge, states)}
}

// Add inserts a transition.
func (m *NFA) Add(p int32, sym int32, q int32) {
	m.Adj[p] = append(m.Adj[p], Edge{Sym: sym, To: q})
}

// sortEdges orders each adjacency list by (symbol, target) and removes
// duplicates; required before enumeration.
func (m *NFA) sortEdges() {
	for i := range m.Adj {
		es := m.Adj[i]
		sort.Slice(es, func(a, b int) bool {
			if es[a].Sym != es[b].Sym {
				return es[a].Sym < es[b].Sym
			}
			return es[a].To < es[b].To
		})
		out := es[:0]
		for k, e := range es {
			if k == 0 || es[k-1] != e {
				out = append(out, e)
			}
		}
		m.Adj[i] = out
	}
}

// CrossSection returns an iterator over L(M) ∩ Σ^length in radix order.
// Preprocessing is O(length · (|Q| + |Δ|)); the delay between words is
// O(length · |Q|²) in the worst case.
type CrossSection struct {
	m      *NFA
	length int
	// alive row i: state q can reach a final state in exactly length-i
	// steps. Words are built left to right through alive states only.
	alive *bitset.Matrix

	started bool
	done    bool
	word    []int32
	sets    [][]int32  // sets[i]: alive states after reading word[:i+1]
	seen    bitset.Row // dedup scratch for setSym
}

// EnumerateLength prepares a cross-section enumeration.
func (m *NFA) EnumerateLength(length int) (*CrossSection, error) {
	if length < 0 {
		return nil, fmt.Errorf("nfa: negative length %d", length)
	}
	m.sortEdges()
	cs := &CrossSection{m: m, length: length}
	// Backward reachability DP on bitset rows.
	cs.alive = bitset.NewMatrix(length+1, m.NumStates)
	last := cs.alive.Row(length)
	for _, f := range m.Final {
		last.Set(f)
	}
	for i := length - 1; i >= 0; i-- {
		cur, next := cs.alive.Row(i), cs.alive.Row(i+1)
		for q := 0; q < m.NumStates; q++ {
			for _, e := range m.Adj[q] {
				if next.Test(e.To) {
					cur.Set(int32(q))
					break
				}
			}
		}
	}
	cs.word = make([]int32, length)
	cs.sets = make([][]int32, length)
	cs.seen = bitset.NewRow(m.NumStates)
	return cs, nil
}

// Next returns the next word of the cross-section; ok is false when done.
// The returned slice is reused across calls; copy it to retain.
func (cs *CrossSection) Next() (word []int32, ok bool) {
	if cs.done {
		return nil, false
	}
	if !cs.started {
		cs.started = true
		if cs.length == 0 {
			cs.done = true
			row := cs.alive.Row(0)
			for _, s := range cs.m.Start {
				if row.Test(s) {
					return cs.word, true // the empty word
				}
			}
			return nil, false
		}
		if !cs.minWord(0) {
			cs.done = true
			return nil, false
		}
		return cs.word, true
	}
	if cs.length == 0 || !cs.nextWord() {
		cs.done = true
		return nil, false
	}
	return cs.word, true
}

// statesBefore returns the state set from which position i's symbol is
// chosen.
func (cs *CrossSection) statesBefore(i int) []int32 {
	if i == 0 {
		var out []int32
		row := cs.alive.Row(0)
		for _, s := range cs.m.Start {
			if row.Test(s) {
				out = append(out, s)
			}
		}
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		return out
	}
	return cs.sets[i-1]
}

// minSym finds the smallest symbol > after available from the set at
// position i that leads to an alive state; after = -1 means any.
func (cs *CrossSection) minSym(i int, after int32) (int32, bool) {
	best := int32(-1)
	alive := cs.alive.Row(i + 1)
	for _, q := range cs.statesBefore(i) {
		for _, e := range cs.m.Adj[q] {
			if e.Sym <= after || !alive.Test(e.To) {
				continue
			}
			if best < 0 || e.Sym < best {
				best = e.Sym
			}
			break // adjacency sorted by symbol: first viable is minimal for q
		}
	}
	return best, best >= 0
}

// setSym fixes word[i] = sym and recomputes sets[i].
func (cs *CrossSection) setSym(i int, sym int32) {
	cs.word[i] = sym
	cs.seen.Zero()
	alive := cs.alive.Row(i + 1)
	for _, q := range cs.statesBefore(i) {
		for _, e := range cs.m.Adj[q] {
			if e.Sym == sym && alive.Test(e.To) {
				cs.seen.Set(e.To)
			}
		}
	}
	cs.sets[i] = cs.seen.AppendOnes(cs.sets[i][:0])
}

func (cs *CrossSection) minWord(from int) bool {
	for i := from; i < cs.length; i++ {
		sym, ok := cs.minSym(i, -1)
		if !ok {
			return false
		}
		cs.setSym(i, sym)
	}
	return true
}

func (cs *CrossSection) nextWord() bool {
	for i := cs.length - 1; i >= 0; i-- {
		sym, ok := cs.minSym(i, cs.word[i])
		if !ok {
			continue
		}
		cs.setSym(i, sym)
		if cs.minWord(i + 1) {
			return true
		}
	}
	return false
}

// minSym has a subtle requirement: the per-state break above assumes each
// state's first viable edge has that state's minimal viable symbol, which
// holds because adjacency lists are symbol-sorted and we skip non-alive
// targets only after comparing symbols. For safety the break is taken only
// after a viable edge; non-viable edges with smaller symbols are skipped in
// the loop.

// Accepts reports whether the NFA accepts the word (for tests).
func (m *NFA) Accepts(word []int32) bool {
	cur := map[int32]bool{}
	for _, s := range m.Start {
		cur[s] = true
	}
	for _, sym := range word {
		next := map[int32]bool{}
		for q := range cur {
			for _, e := range m.Adj[q] {
				if e.Sym == sym {
					next[e.To] = true
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	for _, f := range m.Final {
		if cur[f] {
			return true
		}
	}
	return false
}
