package nfa

import (
	"math/rand"
	"testing"
)

// collect drains a cross-section into copied words.
func collect(t *testing.T, m *NFA, length int) [][]int32 {
	t.Helper()
	cs, err := m.EnumerateLength(length)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]int32
	for {
		w, ok := cs.Next()
		if !ok {
			return out
		}
		out = append(out, append([]int32(nil), w...))
	}
}

// bruteForce enumerates Σ^length and filters by Accepts.
func bruteForce(m *NFA, length int) [][]int32 {
	var out [][]int32
	word := make([]int32, length)
	var rec func(int)
	rec = func(i int) {
		if i == length {
			if m.Accepts(word) {
				out = append(out, append([]int32(nil), word...))
			}
			return
		}
		for s := int32(0); s < int32(m.NumSyms); s++ {
			word[i] = s
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

func less(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestCrossSectionFixed(t *testing.T) {
	// (ab)* over {a=0, b=1}.
	m := New(2, 2)
	m.Start = []int32{0}
	m.Final = []int32{0}
	m.Add(0, 0, 1)
	m.Add(1, 1, 0)
	if got := collect(t, m, 0); len(got) != 1 {
		t.Errorf("length 0: got %d words, want 1 (ε)", len(got))
	}
	if got := collect(t, m, 1); len(got) != 0 {
		t.Errorf("length 1: got %d words, want 0", len(got))
	}
	got := collect(t, m, 4)
	if len(got) != 1 || got[0][0] != 0 || got[0][1] != 1 {
		t.Errorf("length 4: got %v, want [abab]", got)
	}
}

func TestCrossSectionAllWords(t *testing.T) {
	// Σ* accepts everything: cross-section is all Σ^n in radix order.
	m := New(1, 3)
	m.Start = []int32{0}
	m.Final = []int32{0}
	for s := int32(0); s < 3; s++ {
		m.Add(0, s, 0)
	}
	got := collect(t, m, 3)
	if len(got) != 27 {
		t.Fatalf("got %d words, want 27", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !less(got[i-1], got[i]) {
			t.Fatalf("not in radix order at %d: %v !< %v", i, got[i-1], got[i])
		}
	}
}

func TestCrossSectionRandomAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		states := r.Intn(5) + 1
		syms := r.Intn(3) + 1
		m := New(states, syms)
		m.Start = []int32{int32(r.Intn(states))}
		for i := r.Intn(2) + 1; i > 0; i-- {
			m.Final = append(m.Final, int32(r.Intn(states)))
		}
		for i := r.Intn(10) + 1; i > 0; i-- {
			m.Add(int32(r.Intn(states)), int32(r.Intn(syms)), int32(r.Intn(states)))
		}
		for length := 0; length <= 4; length++ {
			got := collect(t, m, length)
			want := bruteForce(m, length)
			if len(got) != len(want) {
				t.Fatalf("trial %d length %d: got %d words, want %d", trial, length, len(got), len(want))
			}
			for i := range got {
				for j := range got[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("trial %d length %d word %d: %v != %v", trial, length, i, got[i], want[i])
					}
				}
				if i > 0 && !less(got[i-1], got[i]) {
					t.Fatalf("trial %d: radix order violated", trial)
				}
			}
		}
	}
}

func TestCrossSectionMultipleStarts(t *testing.T) {
	m := New(3, 2)
	m.Start = []int32{0, 1}
	m.Final = []int32{2}
	m.Add(0, 0, 2) // a from state 0
	m.Add(1, 1, 2) // b from state 1
	got := collect(t, m, 1)
	if len(got) != 2 {
		t.Fatalf("got %d words, want 2", len(got))
	}
}

func TestNegativeLength(t *testing.T) {
	m := New(1, 1)
	if _, err := m.EnumerateLength(-1); err == nil {
		t.Error("negative length must error")
	}
}
