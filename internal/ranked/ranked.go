// Package ranked implements ranked access over the enumerator's layered
// graph (the paper's G, Theorem 3.3): output-independent result counting,
// direct access to the i-th result in the enumeration's canonical radix
// order, and uniform sampling — all via a path-count dynamic program, so
// none of them pays time proportional to the result set.
//
// The layered graph is an NFA over configuration letters: distinct result
// tuples correspond to distinct letter words (§4.1), but one word may be
// spelled by many state paths, so counting paths would overcount. Build
// therefore determinizes the graph on the fly — the same subset
// construction the enumerator's cursor walks implicitly — memoizing each
// distinct (level, node-set) once. On the resulting DAG every root→leaf
// path spells a distinct word, so per-node path counts are exact result
// counts, the letter-ordered descent of WordAt recovers the i-th word in
// radix order, and SampleWord is a count-weighted descent. Counts use
// uint64 with an overflow escape to big.Int, so result sets beyond 2^64
// still count exactly.
//
// The DAG's size is output independent: it is bounded by the number of
// distinct reachable node-sets per level — exponential in the automaton
// size in the worst case (counting the N-length words of an NFA is
// #P-hard in general) but small on the graphs functional vset-automata
// produce in practice, where a prefix's configuration history pins the
// live states. Differential fuzzing pins every operation against the
// enumeration itself.
package ranked

import (
	"math/big"
	"math/bits"
	"math/rand"
	"slices"
	"strconv"
)

// Graph is the layered-graph view the DP consumes: levels 0..NumLevels-1
// of nodes, each node carrying its fan-out into the next level grouped by
// letter, plus a virtual start fanning out into level 0. Letter groups
// must be ascending by letter with ascending, duplicate-free target lists
// — exactly the enumerator's representation.
type Graph interface {
	// NumLevels returns the number of graph levels (|s|+1 for a document
	// s, the length of every configuration word); 0 when the result set
	// is empty.
	NumLevels() int
	// Start returns the virtual initial state's fan-out: ascending
	// letters and, per letter, the target node indices at level 0.
	Start() (letters []int32, targets [][]int32)
	// Edges returns node (level, idx)'s fan-out into level+1, grouped
	// like Start.
	Edges(level, idx int) (letters []int32, targets [][]int32)
}

// Count is an exact non-negative integer with a uint64 fast path; values
// that do not fit escape to big.Int. The zero value is 0.
type Count struct {
	u uint64
	b *big.Int // non-nil iff the value does not fit in a uint64
}

// CountOf returns the Count holding u.
func CountOf(u uint64) Count { return Count{u: u} }

// Add returns c+d, escaping to big.Int on uint64 overflow.
func (c Count) Add(d Count) Count {
	if c.b == nil && d.b == nil {
		if s, carry := bits.Add64(c.u, d.u, 0); carry == 0 {
			return Count{u: s}
		}
	}
	return Count{b: new(big.Int).Add(c.bigVal(), d.bigVal())}
}

// bigVal returns the value as a big.Int that must not be mutated.
func (c Count) bigVal() *big.Int {
	if c.b != nil {
		return c.b
	}
	return new(big.Int).SetUint64(c.u)
}

// Uint64 returns the value and whether it fits in a uint64.
func (c Count) Uint64() (uint64, bool) { return c.u, c.b == nil }

// BigInt returns the exact value as a freshly allocated big.Int.
func (c Count) BigInt() *big.Int { return new(big.Int).Set(c.bigVal()) }

// IsZero reports whether the count is 0.
func (c Count) IsZero() bool { return c.b == nil && c.u == 0 }

// String renders the exact value in decimal.
func (c Count) String() string {
	if c.b != nil {
		return c.b.String()
	}
	return strconv.FormatUint(c.u, 10)
}

// Rank is the ranked-access structure over one layered graph: the
// determinized DAG with per-node word counts. Build it once per
// (plan, document); every query against it is then output independent.
// A Rank is immutable after Build and safe for concurrent use, but views
// the graph it was built from — discard it when the graph is rebuilt.
type Rank struct {
	levels int       // word length |s|+1; 0 when the result set is empty
	nodes  []detNode // level-ordered, nodes[0] is the virtual root
	counts []Count   // counts[v] = number of distinct words from v to a leaf
}

// detNode is one determinized node — a reachable set of layered-graph
// nodes — with at most one child per letter, letters ascending.
type detNode struct {
	letters  []int32
	children []int32
}

type pendingNode struct {
	id      int32
	members []int32 // layered-graph node indices at this node's level, ascending
}

// builder carries the per-level memo of the subset construction.
type builder struct {
	r       *Rank
	memo    map[string]int32 // member-set key → det id, reset per level
	pending []pendingNode    // det nodes of the next level, in id order
	keyBuf  []byte
}

// Build runs the subset construction and the path-count DP over g.
func Build(g Graph) *Rank {
	levels := g.NumLevels()
	r := &Rank{levels: levels, nodes: make([]detNode, 1)}
	if levels == 0 {
		r.counts = []Count{{}}
		return r
	}
	b := &builder{r: r, memo: make(map[string]int32)}

	startLetters, startTargets := g.Start()
	root := detNode{
		letters:  append([]int32(nil), startLetters...),
		children: make([]int32, len(startLetters)),
	}
	for k := range startLetters {
		root.children[k] = b.intern(startTargets[k])
	}
	r.nodes[0] = root

	for l := 0; l+1 < levels; l++ {
		level := b.pending
		b.pending = nil
		clear(b.memo)
		for _, pn := range level {
			r.nodes[pn.id] = b.expand(g, l, pn.members)
		}
	}

	// The last level's det nodes are the leaves: every one closes exactly
	// one word (backward pruning guarantees no earlier dead ends). Det ids
	// are assigned level by level, so children always have larger ids than
	// their parent and one descending pass computes every count.
	firstLeaf := int32(len(r.nodes))
	if len(b.pending) > 0 {
		firstLeaf = b.pending[0].id
	}
	r.counts = make([]Count, len(r.nodes))
	for v := int32(len(r.nodes)) - 1; v >= 0; v-- {
		if v >= firstLeaf {
			r.counts[v] = CountOf(1)
			continue
		}
		var c Count
		for _, ch := range r.nodes[v].children {
			c = c.Add(r.counts[ch])
		}
		r.counts[v] = c
	}
	return r
}

// intern returns the det id of the member set at the level currently
// being produced, creating the node (and queueing it for expansion) on
// first sight. members is only read during Build, so callers may pass
// views into shared storage.
func (b *builder) intern(members []int32) int32 {
	b.keyBuf = b.keyBuf[:0]
	for _, m := range members {
		b.keyBuf = append(b.keyBuf, byte(m), byte(m>>8), byte(m>>16), byte(m>>24))
	}
	if id, ok := b.memo[string(b.keyBuf)]; ok {
		return id
	}
	id := int32(len(b.r.nodes))
	b.r.nodes = append(b.r.nodes, detNode{})
	b.memo[string(b.keyBuf)] = id
	b.pending = append(b.pending, pendingNode{id: id, members: members})
	return id
}

// expand produces the det node of a member set: per distinct letter, the
// union of the members' target lists (the subset-construction step),
// with the child sets interned at the next level.
func (b *builder) expand(g Graph, level int, members []int32) detNode {
	if len(members) == 1 {
		// A single member's letter groups already are the merged fan-out.
		letters, targets := g.Edges(level, int(members[0]))
		nd := detNode{
			letters:  append([]int32(nil), letters...),
			children: make([]int32, len(letters)),
		}
		for k := range letters {
			nd.children[k] = b.intern(targets[k])
		}
		return nd
	}
	var letters []int32
	var lists [][]int32 // lists[k] accumulates letter letters[k]'s targets
	for _, m := range members {
		ls, ts := g.Edges(level, int(m))
		for k, l := range ls {
			at := -1
			for j, have := range letters { // letters per node are few
				if have == l {
					at = j
					break
				}
			}
			if at < 0 {
				letters = append(letters, l)
				lists = append(lists, append([]int32(nil), ts[k]...))
				continue
			}
			lists[at] = append(lists[at], ts[k]...)
		}
	}
	// Radix order: letters ascending, each union sorted and deduped.
	for i := 1; i < len(letters); i++ {
		for j := i; j > 0 && letters[j] < letters[j-1]; j-- {
			letters[j], letters[j-1] = letters[j-1], letters[j]
			lists[j], lists[j-1] = lists[j-1], lists[j]
		}
	}
	nd := detNode{letters: letters, children: make([]int32, len(letters))}
	for k, lst := range lists {
		slices.Sort(lst)
		nd.children[k] = b.intern(slices.Compact(lst))
	}
	return nd
}

// Count returns the exact number of words (= result tuples) in
// O(DAG nodes + edges) at build time and O(1) thereafter.
func (r *Rank) Count() Count { return r.counts[0] }

// NumLevels returns the word length the rank was built for (|s|+1), 0
// when the result set is empty.
func (r *Rank) NumLevels() int { return r.levels }

// Size returns the determinized DAG's node and edge counts (cost
// witnesses for the benchmarks; the descent cost is O(levels·fan-out)).
func (r *Rank) Size() (nodes, edges int) {
	for i := range r.nodes {
		edges += len(r.nodes[i].children)
	}
	return len(r.nodes), edges
}

// WordAt appends the i-th word (0-based, radix order — the enumerator's
// order) to buf[:0] and returns it; ok is false when i ≥ Count. One
// descent costs O(levels · fan-out), independent of i.
func (r *Rank) WordAt(i uint64, buf []int32) (word []int32, ok bool) {
	if total := r.counts[0]; total.b == nil && i >= total.u {
		return nil, false
	}
	buf = buf[:0]
	v := int32(0)
	for l := 0; l < r.levels; l++ {
		nd := &r.nodes[v]
		next := int32(-1)
		for k, ch := range nd.children {
			c := r.counts[ch]
			if c.b != nil || i < c.u {
				buf = append(buf, nd.letters[k])
				next = ch
				break
			}
			i -= c.u
		}
		if next < 0 {
			return nil, false // inconsistent DAG; unreachable after Build
		}
		v = next
	}
	return buf, true
}

// WordAtBig is WordAt for indices beyond uint64 — result sets past 2^64
// stay addressable. i must be non-negative and is not modified.
func (r *Rank) WordAtBig(i *big.Int, buf []int32) (word []int32, ok bool) {
	if i.Sign() < 0 {
		return nil, false
	}
	total := r.counts[0]
	if total.b == nil {
		if !i.IsUint64() {
			return nil, false
		}
		return r.WordAt(i.Uint64(), buf)
	}
	if i.Cmp(total.b) >= 0 {
		return nil, false
	}
	rem := new(big.Int).Set(i)
	buf = buf[:0]
	v := int32(0)
	for l := 0; l < r.levels; l++ {
		nd := &r.nodes[v]
		next := int32(-1)
		for k, ch := range nd.children {
			cb := r.counts[ch].bigVal()
			if rem.Cmp(cb) < 0 {
				buf = append(buf, nd.letters[k])
				next = ch
				break
			}
			rem.Sub(rem, cb)
		}
		if next < 0 {
			return nil, false
		}
		v = next
	}
	return buf, true
}

// SampleWord appends one word drawn uniformly from the result set to
// buf[:0]; ok is false when the result set is empty. Draws are i.i.d.
// across calls and exactly uniform at any count, including past 2^64.
func (r *Rank) SampleWord(rng *rand.Rand, buf []int32) (word []int32, ok bool) {
	total := r.counts[0]
	if total.b != nil {
		return r.WordAtBig(randBigBelow(rng, total.b), buf)
	}
	if total.u == 0 {
		return nil, false
	}
	return r.WordAt(uniformUint64(rng, total.u), buf)
}

// uniformUint64 returns a uniform value in [0, n), n > 0, rejecting the
// biased low slice of the generator's range (v < 2^64 mod n).
func uniformUint64(rng *rand.Rand, n uint64) uint64 {
	threshold := -n % n // 2^64 mod n
	for {
		if v := rng.Uint64(); v >= threshold {
			return v % n
		}
	}
}

// RandBelow returns a uniform value in [0, n), n > 0 — the weighted-pick
// primitive corpus-wide sampling shares with SampleWord.
func RandBelow(rng *rand.Rand, n *big.Int) *big.Int { return randBigBelow(rng, n) }

// randBigBelow returns a uniform value in [0, n) by rejection sampling
// over n.BitLen() random bits (< 2 rounds expected), consuming all 8
// bytes of each generator draw.
func randBigBelow(rng *rand.Rand, n *big.Int) *big.Int {
	nbits := n.BitLen()
	nbytes := (nbits + 7) / 8
	shift := uint(nbytes*8 - nbits)
	raw := make([]byte, nbytes)
	v := new(big.Int)
	for {
		for i := 0; i < nbytes; i += 8 {
			x := rng.Uint64()
			for j := 0; j < 8 && i+j < nbytes; j++ {
				raw[i+j] = byte(x >> (8 * j))
			}
		}
		raw[0] >>= shift
		v.SetBytes(raw)
		if v.Cmp(n) < 0 {
			return v
		}
	}
}
