package ranked_test

import (
	"math/big"
	"math/rand"
	"slices"
	"testing"

	"spanjoin/internal/ranked"
)

// tnode is one test-graph node: its fan-out grouped by letter, matching
// the enumerator's representation (letters ascending, targets ascending).
type tnode struct {
	letters []int32
	targets [][]int32
}

// tgraph is a hand-built layered graph implementing ranked.Graph.
type tgraph struct {
	start  tnode
	levels [][]tnode
}

func (g tgraph) NumLevels() int { return len(g.levels) }
func (g tgraph) Start() ([]int32, [][]int32) {
	return g.start.letters, g.start.targets
}
func (g tgraph) Edges(level, idx int) ([]int32, [][]int32) {
	n := g.levels[level][idx]
	return n.letters, n.targets
}

// bruteWords enumerates every root→leaf path of g, collects the distinct
// letter words, and returns them in radix order — an oracle independent
// of the DP's subset construction.
func bruteWords(g tgraph) [][]int32 {
	seen := map[string][]int32{}
	var walk func(level int, node int32, word []int32)
	walk = func(level int, node int32, word []int32) {
		if level == len(g.levels)-1 {
			w := append([]int32(nil), word...)
			key := ""
			for _, l := range w {
				key += string(rune(l)) + ","
			}
			seen[key] = w
			return
		}
		ls, ts := g.Edges(level, int(node))
		for k := range ls {
			for _, tgt := range ts[k] {
				walk(level+1, tgt, append(word, ls[k]))
			}
		}
	}
	for k := range g.start.letters {
		for _, tgt := range g.start.targets[k] {
			walk(0, tgt, []int32{g.start.letters[k]})
		}
	}
	words := make([][]int32, 0, len(seen))
	for _, w := range seen {
		words = append(words, w)
	}
	slices.SortFunc(words, slices.Compare)
	return words
}

// ambiguousGraph has many distinct state paths all spelling the same
// single-letter word — the `.*a.*` shape where raw path counting would
// report 4 while the true result count is 1.
func ambiguousGraph() tgraph {
	both := []int32{0, 1}
	return tgraph{
		start: tnode{letters: []int32{0}, targets: [][]int32{both}},
		levels: [][]tnode{
			{
				{letters: []int32{0}, targets: [][]int32{both}},
				{letters: []int32{0}, targets: [][]int32{both}},
			},
			{{}, {}},
		},
	}
}

// branchyGraph mixes shared and distinct letters so the word set is a
// strict subset of the path set.
func branchyGraph() tgraph {
	return tgraph{
		// start: letter 0 → {0,1}, letter 1 → {2}
		start: tnode{letters: []int32{0, 1}, targets: [][]int32{{0, 1}, {2}}},
		levels: [][]tnode{
			{
				{letters: []int32{0, 2}, targets: [][]int32{{0}, {1}}},
				{letters: []int32{0}, targets: [][]int32{{0, 1}}},
				{letters: []int32{1, 2}, targets: [][]int32{{1}, {0, 1}}},
			},
			{{}, {}},
		},
	}
}

func TestCountDeduplicatesAmbiguousPaths(t *testing.T) {
	r := ranked.Build(ambiguousGraph())
	if got, ok := r.Count().Uint64(); !ok || got != 1 {
		t.Fatalf("Count = %v, want exactly 1 (4 paths spell one word)", r.Count())
	}
	w, ok := r.WordAt(0, nil)
	if !ok || len(w) != 2 || w[0] != 0 || w[1] != 0 {
		t.Fatalf("WordAt(0) = %v, %v; want [0 0]", w, ok)
	}
	if _, ok := r.WordAt(1, nil); ok {
		t.Fatal("WordAt(1) must be out of range")
	}
}

func TestWordAtMatchesBruteForce(t *testing.T) {
	for name, g := range map[string]tgraph{
		"ambiguous": ambiguousGraph(),
		"branchy":   branchyGraph(),
	} {
		r := ranked.Build(g)
		want := bruteWords(g)
		got, ok := r.Count().Uint64()
		if !ok || got != uint64(len(want)) {
			t.Fatalf("%s: Count = %v, brute force found %d words", name, r.Count(), len(want))
		}
		var buf []int32
		for i := range want {
			w, ok := r.WordAt(uint64(i), buf)
			if !ok {
				t.Fatalf("%s: WordAt(%d) out of range below Count", name, i)
			}
			buf = w
			if !slices.Equal(w, want[i]) {
				t.Fatalf("%s: WordAt(%d) = %v, want %v", name, i, w, want[i])
			}
		}
		if _, ok := r.WordAt(uint64(len(want)), nil); ok {
			t.Fatalf("%s: WordAt(Count) must be out of range", name)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	r := ranked.Build(tgraph{})
	if !r.Count().IsZero() {
		t.Fatalf("empty graph Count = %v, want 0", r.Count())
	}
	if _, ok := r.WordAt(0, nil); ok {
		t.Fatal("WordAt on an empty rank must fail")
	}
	if _, ok := r.SampleWord(rand.New(rand.NewSource(1)), nil); ok {
		t.Fatal("SampleWord on an empty rank must fail")
	}
}

// binaryGraph is a chain of depth independent binary choices: two nodes
// per level with letters 0 and 1, each reaching both nodes of the next
// level. Its word set is exactly {0,1}^depth, so counts and word values
// are known in closed form at any depth — including past uint64.
func binaryGraph(depth int) tgraph {
	both := []int32{0, 1}
	lvl := []tnode{
		{letters: []int32{0, 1}, targets: [][]int32{{0}, {1}}},
		{letters: []int32{0, 1}, targets: [][]int32{{0}, {1}}},
	}
	g := tgraph{start: tnode{letters: both, targets: [][]int32{{0}, {1}}}}
	for i := 0; i < depth-1; i++ {
		g.levels = append(g.levels, lvl)
	}
	g.levels = append(g.levels, []tnode{{}, {}})
	return g
}

// wordBits interprets a binary-graph word as a big-endian integer.
func wordBits(w []int32) *big.Int {
	v := new(big.Int)
	for _, l := range w {
		v.Lsh(v, 1)
		v.Or(v, big.NewInt(int64(l)))
	}
	return v
}

func TestCountOverflowsToBig(t *testing.T) {
	const depth = 70 // 2^70 words: past uint64
	r := ranked.Build(binaryGraph(depth))
	c := r.Count()
	if _, ok := c.Uint64(); ok {
		t.Fatalf("Count %v claims to fit uint64", c)
	}
	want := new(big.Int).Lsh(big.NewInt(1), depth)
	if c.BigInt().Cmp(want) != 0 {
		t.Fatalf("Count = %v, want 2^%d", c, depth)
	}
	if c.String() != want.String() {
		t.Fatalf("String = %q, want %q", c.String(), want.String())
	}

	// The i-th word of {0,1}^depth in radix order is i in binary.
	for _, i := range []uint64{0, 1, 5, 1<<63 + 12345} {
		w, ok := r.WordAt(i, nil)
		if !ok {
			t.Fatalf("WordAt(%d) failed", i)
		}
		if got := wordBits(w); !got.IsUint64() || got.Uint64() != i {
			t.Fatalf("WordAt(%d) decodes to %v", i, got)
		}
	}
	for _, i := range []*big.Int{
		new(big.Int).Lsh(big.NewInt(1), 64),   // 2^64: first index beyond uint64
		new(big.Int).Sub(want, big.NewInt(1)), // last word
		new(big.Int).Add(new(big.Int).Lsh(big.NewInt(3), 65), big.NewInt(7)),
	} {
		w, ok := r.WordAtBig(i, nil)
		if !ok {
			t.Fatalf("WordAtBig(%v) failed", i)
		}
		if got := wordBits(w); got.Cmp(i) != 0 {
			t.Fatalf("WordAtBig(%v) decodes to %v", i, got)
		}
	}
	if _, ok := r.WordAtBig(want, nil); ok {
		t.Fatal("WordAtBig(Count) must be out of range")
	}

	// Sampling a big-count rank must still yield valid words.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 16; i++ {
		w, ok := r.SampleWord(rng, nil)
		if !ok || len(w) != depth {
			t.Fatalf("SampleWord on big count: ok=%v len=%d", ok, len(w))
		}
	}
}

func TestCountArithmetic(t *testing.T) {
	max := ^uint64(0)
	c := ranked.CountOf(max).Add(ranked.CountOf(1))
	if _, ok := c.Uint64(); ok {
		t.Fatal("2^64 claims to fit uint64")
	}
	if got, want := c.String(), "18446744073709551616"; got != want {
		t.Fatalf("2^64 = %q, want %q", got, want)
	}
	d := c.Add(ranked.CountOf(5)).Add(c)
	if got, want := d.String(), "36893488147419103237"; got != want {
		t.Fatalf("big add = %q, want %q", got, want)
	}
	if got := ranked.CountOf(3).Add(ranked.CountOf(4)); !func() bool {
		u, ok := got.Uint64()
		return ok && u == 7
	}() {
		t.Fatalf("3+4 = %v", got)
	}
}

func TestSampleWordUniform(t *testing.T) {
	g := branchyGraph()
	r := ranked.Build(g)
	words := bruteWords(g)
	rng := rand.New(rand.NewSource(42))
	hist := make(map[string]int)
	const draws = 6000
	var buf []int32
	for i := 0; i < draws; i++ {
		w, ok := r.SampleWord(rng, buf)
		if !ok {
			t.Fatal("SampleWord failed on a non-empty rank")
		}
		buf = w
		key := ""
		for _, l := range w {
			key += string(rune('a' + l))
		}
		hist[key]++
	}
	if len(hist) != len(words) {
		t.Fatalf("sampled %d distinct words, result set has %d", len(hist), len(words))
	}
	mean := draws / len(words)
	for k, n := range hist {
		if n < mean/2 || n > mean*2 {
			t.Fatalf("word %q drawn %d times, expected ≈%d (seeded run)", k, n, mean)
		}
	}
}
