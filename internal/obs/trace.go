package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Stage names one pipeline phase of a query's life. The constants below
// are the taxonomy every layer records against; spanlint's obsspan
// analyzer checks that functions annotated //spanjoin:stage <name>
// actually record that stage.
type Stage string

const (
	// StageAdmission is the wait in the gate's queue before the worker
	// pool may start.
	StageAdmission Stage = "admission_wait"
	// StageCache is the compiled-query cache lookup, including the
	// compilation when the lookup misses (the span's Items is 0 on a hit,
	// 1 on a miss).
	StageCache Stage = "cache"
	// StagePlan is the enum.Plan build — automaton trim, closures,
	// letter table, transition matrices. Recorded only when the plan was
	// actually built (memoized plans cost nothing).
	StagePlan Stage = "plan_build"
	// StagePrefilter is candidate selection: the snapshot capture plus
	// the skip-index posting intersection.
	StagePrefilter Stage = "prefilter"
	// StageEnumerate is the worker pool's lifetime — graph builds and
	// result streaming; Items is the number of delivered results.
	StageEnumerate Stage = "enumerate"
	// StageCount is the counting sweep (the ranked DP fan-out behind
	// /count and cursor pagination).
	StageCount Stage = "count"
	// StageWALAppend is the write-ahead-log append of one added
	// document, excluding the fsync.
	StageWALAppend Stage = "wal_append"
	// StageWALSync is the fsync forced by the append's policy.
	StageWALSync Stage = "wal_fsync"
	// StageSnapshot is one full snapshot cycle (rotate, write, prune).
	StageSnapshot Stage = "snapshot"
)

// StageSpan is one stage's accumulated time within a trace. Repeated
// observations of the same stage merge: Start keeps the first
// occurrence's offset from the trace start, Dur and Items accumulate,
// and Calls counts the observations.
type StageSpan struct {
	Stage Stage `json:"stage"`
	// Start is the stage's first occurrence, as an offset from the
	// trace's start, in nanoseconds.
	Start time.Duration `json:"start_ns"`
	// Dur is the stage's total wall time in nanoseconds.
	Dur time.Duration `json:"dur_ns"`
	// Items counts stage-specific work units (delivered results for
	// enumerate, cache misses for cache).
	Items int64 `json:"items,omitempty"`
	// Calls counts how many observations merged into this span.
	Calls int64 `json:"calls,omitempty"`
}

// Trace accumulates one query's per-stage timings. It is carried on the
// context (WithTrace/FromContext) so every layer below the entry point
// can record into it without plumbing. All methods are safe for
// concurrent use and safe on the nil trace — a query evaluated without
// tracing pays one context lookup, then every record is a nil-check.
type Trace struct {
	start time.Time

	mu    sync.Mutex
	spans []StageSpan
}

// NewTrace starts an empty trace; its clock starts now.
func NewTrace() *Trace { return &Trace{start: time.Now()} }

// Total is the wall time since the trace started.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Observe records d against the stage.
func (t *Trace) Observe(s Stage, d time.Duration) { t.ObserveItems(s, d, 0) }

// ObserveItems records d and n work units against the stage.
func (t *Trace) ObserveItems(s Stage, d time.Duration, n int64) {
	if t == nil {
		return
	}
	offset := time.Since(t.start) - d
	if offset < 0 {
		offset = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.spans {
		if t.spans[i].Stage == s {
			t.spans[i].Dur += d
			t.spans[i].Items += n
			t.spans[i].Calls++
			return
		}
	}
	t.spans = append(t.spans, StageSpan{Stage: s, Start: offset, Dur: d, Items: n, Calls: 1})
}

// Span is an open stage measurement; obtain with Start, finish with End
// or EndItems. The zero Span (from a nil trace) is a no-op.
type Span struct {
	t     *Trace
	stage Stage
	t0    time.Time
}

// Start opens a span for the stage. On the nil trace the returned span
// does nothing.
func (t *Trace) Start(s Stage) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, stage: s, t0: time.Now()}
}

// End closes the span, recording its elapsed time.
func (sp Span) End() { sp.EndItems(0) }

// EndItems closes the span, recording its elapsed time and n work units.
func (sp Span) EndItems(n int64) {
	if sp.t == nil {
		return
	}
	sp.t.ObserveItems(sp.stage, time.Since(sp.t0), n)
}

// Spans snapshots the recorded stages, ordered by first occurrence.
func (t *Trace) Spans() []StageSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]StageSpan(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

type traceKey struct{}

// WithTrace derives a context carrying a fresh trace, returning both.
func WithTrace(ctx context.Context) (context.Context, *Trace) {
	t := NewTrace()
	return context.WithValue(ctx, traceKey{}, t), t
}

// FromContext returns the context's trace, or nil when the query is not
// being traced — the nil trace's methods all no-op, so callers record
// unconditionally.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
