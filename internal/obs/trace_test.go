package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	tr.Observe(StageEnumerate, time.Second)
	tr.ObserveItems(StageCache, time.Second, 1)
	sp := tr.Start(StagePlan)
	sp.End()
	sp.EndItems(3)
	if tr.Spans() != nil {
		t.Fatal("nil trace returned spans")
	}
	if tr.Total() != 0 {
		t.Fatal("nil trace returned nonzero total")
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("untraced context returned a trace")
	}
	ctx, tr := WithTrace(context.Background())
	if got := FromContext(ctx); got != tr {
		t.Fatal("FromContext did not return the attached trace")
	}
}

func TestTraceMergesRepeatedStages(t *testing.T) {
	tr := NewTrace()
	tr.ObserveItems(StageEnumerate, 10*time.Millisecond, 5)
	tr.ObserveItems(StageEnumerate, 15*time.Millisecond, 7)
	tr.Observe(StagePrefilter, time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (repeats merge)", len(spans))
	}
	var enum StageSpan
	for _, s := range spans {
		if s.Stage == StageEnumerate {
			enum = s
		}
	}
	if enum.Dur != 25*time.Millisecond || enum.Items != 12 || enum.Calls != 2 {
		t.Fatalf("merged span = %+v", enum)
	}
}

func TestSpanRecordsElapsed(t *testing.T) {
	tr := NewTrace()
	sp := tr.Start(StageWALAppend)
	time.Sleep(2 * time.Millisecond)
	sp.EndItems(1)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Stage != StageWALAppend {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Dur < time.Millisecond {
		t.Fatalf("span duration %v too short", spans[0].Dur)
	}
	if tr.Total() < spans[0].Dur {
		t.Fatalf("trace total %v < span %v", tr.Total(), spans[0].Dur)
	}
}

func TestTraceConcurrentObserve(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	stages := []Stage{StageEnumerate, StagePrefilter, StageAdmission, StageCache}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.ObserveItems(stages[g%len(stages)], time.Microsecond, 1)
			}
		}(g)
	}
	wg.Wait()
	var items int64
	for _, s := range tr.Spans() {
		items += s.Items
	}
	if items != 8*500 {
		t.Fatalf("items = %d, want %d", items, 8*500)
	}
}

func TestStageSpanJSONShape(t *testing.T) {
	b, err := json.Marshal(StageSpan{Stage: StageEnumerate, Start: 5, Dur: 10, Items: 2, Calls: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"stage":"enumerate","start_ns":5,"dur_ns":10,"items":2,"calls":1}`
	if string(b) != want {
		t.Fatalf("json = %s, want %s", b, want)
	}
}
