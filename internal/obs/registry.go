// Package obs is the engine's observability layer: a zero-dependency
// metrics registry (atomic counters, gauges, fixed-bucket latency
// histograms with quantile extraction and Prometheus text exposition),
// a lightweight per-query stage trace carried on the context, and a
// ring-buffer slow-query log.
//
// The package sits below everything: it imports only the standard
// library and nothing under internal/, so every layer — wal, resilience,
// corpus, enum, the public API, the server — can report into it without
// cycles. Instruments are nil-safe: calling Observe/Add/Inc on a nil
// *Histogram or *Counter is a no-op, so wiring code never branches on
// "is metrics enabled" — an unconfigured layer just holds nil handles.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotone counter. The nil counter discards observations.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count; 0 on the nil counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// DefBuckets are the default latency histogram bounds: exponential from
// 50µs to 10s, chosen so both a cache-hit count (~100µs) and a worst-case
// deadline (spand's 2m clamp lands in the overflow bucket) resolve to a
// meaningful quantile.
var DefBuckets = []time.Duration{
	50 * time.Microsecond, 100 * time.Microsecond, 250 * time.Microsecond,
	500 * time.Microsecond, time.Millisecond, 2500 * time.Microsecond,
	5 * time.Millisecond, 10 * time.Millisecond, 25 * time.Millisecond,
	50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
	500 * time.Millisecond, time.Second, 2500 * time.Millisecond,
	5 * time.Second, 10 * time.Second,
}

// Histogram is a fixed-bucket latency histogram: one atomic counter per
// bucket plus an overflow bucket, an exact sum, and quantile extraction
// by bucket interpolation. Observe is lock-free and allocation-free, so
// it is safe on serving paths. The nil histogram discards observations.
type Histogram struct {
	bounds []time.Duration // ascending upper bounds; counts has one extra overflow slot
	counts []atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

func newHistogram(bounds []time.Duration) *Histogram {
	b := append([]time.Duration(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one duration (negative observations clamp to zero).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	// Linear scan: bucket counts are small (≤ ~20) and the slice is in
	// cache; a binary search's branches cost as much as the walk.
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
}

// Since observes the time elapsed since t0.
func (h *Histogram) Since(t0 time.Time) { h.Observe(time.Since(t0)) }

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum reads the exact sum of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear interpolation
// within the bucket the rank lands in; observations beyond the last
// bound report that bound (the histogram cannot resolve further). Zero
// observations report 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if cum+n < rank {
			cum += n
			continue
		}
		if i >= len(h.bounds) {
			// Overflow bucket: unbounded above, report the last bound.
			return h.bounds[len(h.bounds)-1]
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = h.bounds[i-1]
		}
		frac := float64(rank-cum) / float64(n)
		return lo + time.Duration(frac*float64(h.bounds[i]-lo))
	}
	return h.bounds[len(h.bounds)-1]
}

// metricKind discriminates the exposition TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one fixed name=value pair attached to a metric at
// registration. Labels are static for the metric's lifetime — dynamic
// dimensions register one metric per value (the registry is idempotent,
// so registering in a hot handler is a map lookup, not an allocation
// storm).
type Label struct {
	Key, Value string
}

// metric is one registered time series.
type metric struct {
	labels    []Label
	counter   *Counter
	gaugeFn   func() float64
	counterFn func() uint64
	hist      *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	order  []string // label signatures, registration order
	series map[string]*metric
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. All methods are safe for concurrent use; the
// getters are get-or-create, so callers may re-register idempotently.
// The zero value is not usable — create with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelSig is the canonical series key within a family.
func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

var nameOK = func(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// lookup returns the family's series for the label set, creating both as
// needed; init populates a newly created series' instrument while the
// registry lock is held, so a metric's fields are immutable once it is
// visible in the map (scrapes read them without the lock). A name reused
// with a different kind panics: that is a programming error the first
// scrape would otherwise render as an unparseable exposition.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label, init func(*metric)) *metric {
	if !nameOK(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*metric)}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	sig := labelSig(labels)
	m := f.series[sig]
	if m == nil {
		m = &metric{labels: append([]Label(nil), labels...)}
		init(m)
		f.series[sig] = m
		f.order = append(f.order, sig)
	}
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.lookup(name, help, kindCounter, labels, func(m *metric) {
		m.counter = new(Counter)
	})
	return m.counter
}

// CounterFunc registers a counter whose value is read from f at scrape
// time — for wrapping cumulative counters a lower layer already keeps
// (WAL appends, cache hits, gate sheds) without double bookkeeping.
// First registration wins.
func (r *Registry) CounterFunc(name, help string, f func() uint64, labels ...Label) {
	r.lookup(name, help, kindCounter, labels, func(m *metric) {
		m.counterFn = f
	})
}

// Gauge registers a gauge whose value is read from f at scrape time.
// First registration wins.
func (r *Registry) Gauge(name, help string, f func() float64, labels ...Label) {
	r.lookup(name, help, kindGauge, labels, func(m *metric) {
		m.gaugeFn = f
	})
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (nil selects DefBuckets). Re-registration
// returns the existing histogram; its original bounds win.
func (r *Registry) Histogram(name, help string, buckets []time.Duration, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	m := r.lookup(name, help, kindHistogram, labels, func(m *metric) {
		m.hist = newHistogram(buckets)
	})
	return m.hist
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// labelString renders {k="v",...}, merging extra (the le pair) last.
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func seconds(d time.Duration) string { return formatFloat(d.Seconds()) }

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): families in registration order,
// each with # HELP and # TYPE lines, histograms with cumulative
// _bucket{le=...} series, _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		r.mu.Lock()
		sigs := append([]string(nil), f.order...)
		series := make([]*metric, len(sigs))
		for i, sig := range sigs {
			series[i] = f.series[sig]
		}
		r.mu.Unlock()
		for _, m := range series {
			if err := writeSeries(w, f, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, m *metric) error {
	switch f.kind {
	case kindCounter:
		v := m.counter.Value()
		if m.counterFn != nil {
			v = m.counterFn()
		}
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(m.labels), v)
		return err
	case kindGauge:
		var v float64
		if m.gaugeFn != nil {
			v = m.gaugeFn()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(m.labels), formatFloat(v))
		return err
	case kindHistogram:
		h := m.hist
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			le := Label{Key: "le", Value: seconds(bound)}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(m.labels, le), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(m.labels, Label{Key: "le", Value: "+Inf"}), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(m.labels), seconds(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(m.labels), cum)
		return err
	}
	return nil
}

// MetricPoint is one metric's JSON-friendly snapshot, the machine shape
// /stats embeds. Histograms report count, sum and the standard
// quantiles; counters and gauges report a single value.
type MetricPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Type   string            `json:"type"`
	Value  float64           `json:"value,omitempty"`
	Count  uint64            `json:"count,omitempty"`
	SumSec float64           `json:"sum_seconds,omitempty"`
	P50Sec float64           `json:"p50_seconds,omitempty"`
	P90Sec float64           `json:"p90_seconds,omitempty"`
	P99Sec float64           `json:"p99_seconds,omitempty"`
}

// Snapshot captures every registered metric as MetricPoints, families in
// registration order.
func (r *Registry) Snapshot() []MetricPoint {
	r.mu.Lock()
	type entry struct {
		f *family
		m *metric
	}
	var entries []entry
	for _, name := range r.order {
		f := r.families[name]
		for _, sig := range f.order {
			entries = append(entries, entry{f, f.series[sig]})
		}
	}
	r.mu.Unlock()

	out := make([]MetricPoint, 0, len(entries))
	for _, e := range entries {
		p := MetricPoint{Name: e.f.name, Type: e.f.kind.String()}
		if len(e.m.labels) > 0 {
			p.Labels = make(map[string]string, len(e.m.labels))
			for _, l := range e.m.labels {
				p.Labels[l.Key] = l.Value
			}
		}
		switch e.f.kind {
		case kindCounter:
			v := e.m.counter.Value()
			if e.m.counterFn != nil {
				v = e.m.counterFn()
			}
			p.Value = float64(v)
		case kindGauge:
			if e.m.gaugeFn != nil {
				p.Value = e.m.gaugeFn()
			}
		case kindHistogram:
			h := e.m.hist
			p.Count = h.Count()
			p.SumSec = h.Sum().Seconds()
			p.P50Sec = h.Quantile(0.50).Seconds()
			p.P90Sec = h.Quantile(0.90).Seconds()
			p.P99Sec = h.Quantile(0.99).Seconds()
		}
		out = append(out, p)
	}
	return out
}
