package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func entry(id string, d time.Duration) SlowEntry {
	return SlowEntry{ID: id, Endpoint: "/eval", Dur: d}
}

func TestSlowLogThresholdBoundary(t *testing.T) {
	l := NewSlowLog(4, 100*time.Millisecond)
	if l.Observe(entry("fast", 99*time.Millisecond)) {
		t.Fatal("recorded a query under the threshold")
	}
	if !l.Observe(entry("exact", 100*time.Millisecond)) {
		t.Fatal("a query exactly at the threshold is slow — boundary is inclusive")
	}
	if !l.Observe(entry("slow", 101*time.Millisecond)) {
		t.Fatal("failed to record a slow query")
	}
	if got := l.Total(); got != 2 {
		t.Fatalf("Total = %d, want 2", got)
	}
	snap := l.Snapshot()
	if len(snap) != 2 || snap[0].ID != "slow" || snap[1].ID != "exact" {
		t.Fatalf("snapshot = %+v, want newest first", snap)
	}
}

func TestSlowLogDisabled(t *testing.T) {
	l := NewSlowLog(4, 0)
	if l.Observe(entry("any", time.Hour)) {
		t.Fatal("zero threshold must disable recording")
	}
	var nilLog *SlowLog
	if nilLog.Observe(entry("any", time.Hour)) || nilLog.Snapshot() != nil || nilLog.Total() != 0 {
		t.Fatal("nil slowlog must no-op")
	}
}

func TestSlowLogWraparound(t *testing.T) {
	l := NewSlowLog(3, time.Millisecond)
	for i := 0; i < 7; i++ {
		l.Observe(entry(fmt.Sprintf("q%d", i), time.Second))
	}
	if got := l.Total(); got != 7 {
		t.Fatalf("Total = %d, want 7", got)
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot length = %d, want capacity 3", len(snap))
	}
	for i, want := range []string{"q6", "q5", "q4"} {
		if snap[i].ID != want {
			t.Fatalf("snapshot[%d] = %q, want %q (newest first after wrap)", i, snap[i].ID, want)
		}
	}
}

func TestSlowLogConcurrentReaders(t *testing.T) {
	l := NewSlowLog(8, time.Millisecond)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := l.Snapshot()
				if len(snap) > 8 {
					panic("snapshot exceeds capacity")
				}
				for _, e := range snap {
					if e.ID == "" {
						panic("snapshot exposed an unwritten slot")
					}
				}
				l.Total()
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				l.Observe(entry(fmt.Sprintf("w%d-%d", w, i), time.Second))
			}
		}(w)
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()
	if got := l.Total(); got != 4*250 {
		t.Fatalf("Total = %d, want %d", got, 4*250)
	}
}
