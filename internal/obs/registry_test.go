package obs

import (
	"bufio"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter Value = %d, want 0", got)
	}
	r := NewRegistry()
	c = r.Counter("sj_test_total", "help")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("Value = %d, want 3", got)
	}
	if again := r.Counter("sj_test_total", "help"); again != c {
		t.Fatal("re-registration did not return the same counter")
	}
}

func TestHistogramZeroObservations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sj_empty_seconds", "help", nil)
	if got := h.Count(); got != 0 {
		t.Fatalf("Count = %d, want 0", got)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%v) on empty histogram = %v, want 0", q, got)
		}
	}
	// The exposition must still be well-formed: all-zero buckets, zero
	// sum and count.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `sj_empty_seconds_bucket{le="+Inf"} 0`) {
		t.Fatalf("missing +Inf bucket in:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "sj_empty_seconds_count 0") {
		t.Fatalf("missing zero count in:\n%s", sb.String())
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := NewRegistry()
	buckets := []time.Duration{time.Millisecond, 10 * time.Millisecond}
	h := r.Histogram("sj_overflow_seconds", "help", buckets)
	h.Observe(time.Hour) // far beyond the last bound
	h.Observe(2 * time.Hour)
	if got := h.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	// Every quantile lands in the overflow bucket, which reports the
	// largest finite bound — the histogram cannot resolve further.
	if got := h.Quantile(0.5); got != 10*time.Millisecond {
		t.Fatalf("Quantile(0.5) = %v, want %v", got, 10*time.Millisecond)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `sj_overflow_seconds_bucket{le="0.01"} 0`) {
		t.Fatalf("finite buckets should be empty:\n%s", out)
	}
	if !strings.Contains(out, `sj_overflow_seconds_bucket{le="+Inf"} 2`) {
		t.Fatalf("+Inf bucket should hold both observations:\n%s", out)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := newHistogram([]time.Duration{10 * time.Millisecond, 20 * time.Millisecond})
	// 100 observations uniformly inside (10ms, 20ms]: the p50 rank is
	// halfway through that bucket.
	for i := 0; i < 100; i++ {
		h.Observe(15 * time.Millisecond)
	}
	got := h.Quantile(0.5)
	if got < 10*time.Millisecond || got > 20*time.Millisecond {
		t.Fatalf("Quantile(0.5) = %v, want within (10ms, 20ms]", got)
	}
	if h.Quantile(1) != 20*time.Millisecond {
		t.Fatalf("Quantile(1) = %v, want bucket upper bound", h.Quantile(1))
	}
	// An observation exactly on a bound belongs to that bound's bucket
	// (le is inclusive, like Prometheus).
	h2 := newHistogram([]time.Duration{10 * time.Millisecond, 20 * time.Millisecond})
	h2.Observe(10 * time.Millisecond)
	if got := h2.Quantile(1); got > 10*time.Millisecond {
		t.Fatalf("boundary observation leaked past its bucket: %v", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sj_conc_seconds", "help", nil)
	const (
		goroutines = 8
		perG       = 1000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	// Scrape concurrently with the writers: must be race-free and
	// well-formed even mid-update.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Count = %d, want %d", got, goroutines*perG)
	}
}

// sampleLine matches one exposition sample; comment lines are checked
// separately.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? -?[0-9.eE+-]+$`)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("sj_requests_total", "requests", Label{"handler", "eval"}, Label{"code", "200"}).Add(3)
	r.Gauge("sj_queue_depth", "queued callers", func() float64 { return 2.5 })
	r.CounterFunc("sj_hits_total", "cache hits", func() uint64 { return 42 })
	h := r.Histogram("sj_lat_seconds", "latency", []time.Duration{time.Millisecond, time.Second})
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Second)
	r.Counter("sj_escape_total", "escaping", Label{"q", `a"b\c` + "\n"}).Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	sc := bufio.NewScanner(strings.NewReader(out))
	types := map[string]string{}
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
	}
	for name, want := range map[string]string{
		"sj_requests_total": "counter",
		"sj_queue_depth":    "gauge",
		"sj_hits_total":     "counter",
		"sj_lat_seconds":    "histogram",
	} {
		if types[name] != want {
			t.Fatalf("TYPE %s = %q, want %q", name, types[name], want)
		}
	}
	for _, want := range []string{
		`sj_requests_total{handler="eval",code="200"} 3`,
		"sj_queue_depth 2.5",
		"sj_hits_total 42",
		`sj_lat_seconds_bucket{le="0.001"} 1`,
		`sj_lat_seconds_bucket{le="1"} 1`,
		`sj_lat_seconds_bucket{le="+Inf"} 2`,
		"sj_lat_seconds_count 2",
		`sj_escape_total{q="a\"b\\c\n"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative (monotone non-decreasing).
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "sj_lat_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket value in %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("non-cumulative buckets: %d after %d", v, prev)
		}
		prev = v
	}
}

func TestSnapshotQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sj_snap_seconds", "help", nil)
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	r.Counter("sj_snap_total", "help").Add(5)
	pts := r.Snapshot()
	byName := map[string]MetricPoint{}
	for _, p := range pts {
		byName[p.Name] = p
	}
	hp := byName["sj_snap_seconds"]
	if hp.Count != 10 || hp.P99Sec <= 0 || math.IsNaN(hp.P99Sec) {
		t.Fatalf("histogram point = %+v", hp)
	}
	if cp := byName["sj_snap_total"]; cp.Value != 5 {
		t.Fatalf("counter point = %+v", cp)
	}
}

func TestInvalidMetricNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid metric name")
		}
	}()
	NewRegistry().Counter("0bad name", "help")
}
