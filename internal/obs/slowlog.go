package obs

import (
	"sync"
	"time"
)

// SlowEntry is one slow query's record: enough to reproduce the request
// (endpoint + raw query string), correlate it with client-side errors
// (the request ID echoed in X-Request-Id), and explain it (the full
// stage trace).
type SlowEntry struct {
	ID       string        `json:"id"`
	Time     time.Time     `json:"time"`
	Endpoint string        `json:"endpoint"`
	Query    string        `json:"query"`
	Status   int           `json:"status"`
	Dur      time.Duration `json:"dur_ns"`
	Stages   []StageSpan   `json:"stages,omitempty"`
}

// SlowLog is a fixed-capacity ring buffer of the most recent slow
// queries. Writers overwrite the oldest entry once the ring is full;
// Snapshot gives readers a consistent newest-first copy. Safe for
// concurrent use by any number of writers and readers.
type SlowLog struct {
	threshold time.Duration

	mu    sync.Mutex
	ring  []SlowEntry
	next  int    // ring index the next entry lands in
	total uint64 // entries ever recorded
}

// NewSlowLog creates a ring of the given capacity (minimum 1) recording
// queries at least as slow as threshold; threshold ≤ 0 disables
// recording entirely.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{threshold: threshold, ring: make([]SlowEntry, 0, capacity)}
}

// Threshold reports the configured slowness bound; ≤ 0 means disabled.
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// Observe records the entry iff its duration meets the threshold
// (boundary inclusive: a query exactly at the threshold is slow),
// reporting whether it was recorded.
func (l *SlowLog) Observe(e SlowEntry) bool {
	if l == nil || l.threshold <= 0 || e.Dur < l.threshold {
		return false
	}
	l.mu.Lock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
	}
	l.next = (l.next + 1) % cap(l.ring)
	l.total++
	l.mu.Unlock()
	return true
}

// Total reports how many slow queries have ever been recorded (not
// bounded by the ring's capacity).
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot copies the retained entries, newest first.
func (l *SlowLog) Snapshot() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, len(l.ring))
	// next-1 is the newest entry; walk backwards through the ring.
	for i := 0; i < len(l.ring); i++ {
		idx := (l.next - 1 - i + len(l.ring)) % len(l.ring)
		out = append(out, l.ring[idx])
	}
	return out
}
