//go:build !race

package alloctest

// RaceEnabled reports whether the race detector is instrumenting this
// build; see race_on.go for the other half of the pair.
const RaceEnabled = false
