// Package alloctest is the single gate for allocation-count assertions.
//
// Alloc assertions (testing.AllocsPerRun) are precise on ordinary builds
// but flaky under the race detector: race instrumentation allocates its
// own bookkeeping (shadow state, sync-event buffers) inside the measured
// function, so counts come out both higher and nondeterministic. Rather
// than every test carrying its own ad-hoc skip — the pattern this package
// replaces — alloc assertions route through Run/Assert, which skip under
// `-race` with one documented reason. A test skipped here still runs its
// functional body elsewhere; only the allocation *count* is unasserted.
package alloctest

import "testing"

// Run measures the average allocations of runs calls of f, skipping the
// calling test under the race detector (see the package comment for why
// the count cannot be asserted there).
func Run(t testing.TB, runs int, f func()) float64 {
	t.Helper()
	if RaceEnabled {
		t.Skip("alloctest: race instrumentation allocates inside AllocsPerRun; count assertions are only meaningful on non-race builds")
	}
	return testing.AllocsPerRun(runs, f)
}

// Assert fails t when the average allocations of runs calls of f exceed
// max; under the race detector it skips like Run.
func Assert(t testing.TB, runs int, max float64, f func()) {
	t.Helper()
	if avg := Run(t, runs, f); avg > max {
		t.Fatalf("allocs/op = %.1f, want ≤ %.1f", avg, max)
	}
}
