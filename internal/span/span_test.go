package span

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestExample21 reproduces Example 2.1 of the paper: spans of
// "chocolate cookie".
func TestExample21(t *testing.T) {
	s := "chocolate cookie"
	if len(s) != 16 {
		t.Fatalf("|s| = %d, want 16", len(s))
	}
	a := Span{4, 6}
	b := Span{11, 13}
	if a.Substr(s) != "co" || b.Substr(s) != "co" {
		t.Errorf("substrings: %q, %q, want co, co", a.Substr(s), b.Substr(s))
	}
	if a == b {
		t.Error("[4,6⟩ and [11,13⟩ must be distinct spans despite equal substrings")
	}
	e1, e2 := Span{1, 1}, Span{2, 2}
	if e1.Substr(s) != "" || e2.Substr(s) != "" {
		t.Error("empty spans must span the empty string")
	}
	if e1 == e2 {
		t.Error("[1,1⟩ and [2,2⟩ must be distinct")
	}
	whole := Span{1, 17}
	if whole.Substr(s) != s {
		t.Errorf("s_[1,17⟩ = %q, want the whole string", whole.Substr(s))
	}
}

func TestSpanBasics(t *testing.T) {
	p := Span{2, 5}
	if p.Len() != 3 || p.IsEmpty() {
		t.Errorf("Len/IsEmpty wrong for %v", p)
	}
	if !(Span{3, 3}).IsEmpty() {
		t.Error("empty span not recognized")
	}
	if !p.ValidFor(4) || p.ValidFor(3) {
		t.Error("ValidFor boundaries wrong")
	}
	if (Span{0, 2}).ValidFor(5) {
		t.Error("0-based start should be invalid")
	}
	if p.String() != "[2,5⟩" {
		t.Errorf("String = %q", p.String())
	}
}

func TestSpanCompare(t *testing.T) {
	cases := []struct {
		a, b Span
		want int
	}{
		{Span{1, 2}, Span{1, 2}, 0},
		{Span{1, 2}, Span{1, 3}, -1},
		{Span{2, 2}, Span{1, 9}, 1},
	}
	for _, tc := range cases {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := tc.b.Compare(tc.a); got != -tc.want {
			t.Errorf("Compare antisymmetry broken for %v,%v", tc.a, tc.b)
		}
	}
}

func TestSpanContains(t *testing.T) {
	outer := Span{2, 8}
	for _, tc := range []struct {
		inner Span
		want  bool
	}{
		{Span{2, 8}, true},
		{Span{3, 5}, true},
		{Span{2, 2}, true},
		{Span{8, 8}, true},
		{Span{1, 3}, false},
		{Span{7, 9}, false},
	} {
		if got := outer.Contains(tc.inner); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.inner, got, tc.want)
		}
	}
}

func TestAllSpans(t *testing.T) {
	for n := 0; n <= 5; n++ {
		all := All(n)
		want := (n + 1) * (n + 2) / 2
		if len(all) != want {
			t.Errorf("All(%d) has %d spans, want %d", n, len(all), want)
		}
		seen := map[Span]bool{}
		for _, p := range all {
			if !p.ValidFor(n) {
				t.Errorf("All(%d) produced invalid span %v", n, p)
			}
			if seen[p] {
				t.Errorf("All(%d) produced duplicate %v", n, p)
			}
			seen[p] = true
		}
	}
}

func TestVarList(t *testing.T) {
	vl := NewVarList("y", "x", "y", "z")
	if len(vl) != 3 || vl[0] != "x" || vl[1] != "y" || vl[2] != "z" {
		t.Fatalf("NewVarList = %v", vl)
	}
	if vl.Index("y") != 1 || vl.Index("w") != -1 {
		t.Error("Index wrong")
	}
	if !vl.Contains("z") || vl.Contains("q") {
		t.Error("Contains wrong")
	}
	if vl.String() != "{x, y, z}" {
		t.Errorf("String = %q", vl.String())
	}
}

func TestVarListAlgebra(t *testing.T) {
	a := NewVarList("x", "y")
	b := NewVarList("y", "z")
	if got := a.Union(b); !got.Equal(NewVarList("x", "y", "z")) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewVarList("y")) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(NewVarList("x")) {
		t.Errorf("Minus = %v", got)
	}
	if a.Equal(b) || !a.Equal(NewVarList("y", "x")) {
		t.Error("Equal wrong")
	}
	var empty VarList
	if !a.Intersect(empty).Equal(empty) || !a.Union(empty).Equal(a) {
		t.Error("empty-list algebra wrong")
	}
}

func TestTupleCompareAndKey(t *testing.T) {
	t1 := Tuple{{1, 2}, {3, 4}}
	t2 := Tuple{{1, 2}, {3, 5}}
	if t1.Compare(t2) != -1 || t2.Compare(t1) != 1 || t1.Compare(t1) != 0 {
		t.Error("Compare wrong")
	}
	if t1.Key() == t2.Key() {
		t.Error("distinct tuples share a key")
	}
	if t1.Key() != t1.Clone().Key() {
		t.Error("clone changes key")
	}
	c := t1.Clone()
	c[0] = Span{9, 9}
	if t1[0].Start == 9 {
		t.Error("Clone aliases the original")
	}
}

func TestTupleFormat(t *testing.T) {
	vars := NewVarList("x", "y")
	tu := Tuple{{1, 2}, {2, 2}}
	if got := tu.Format(vars); got != "x=[1,2⟩ y=[2,2⟩" {
		t.Errorf("Format = %q", got)
	}
}

func TestQuickTupleKeyInjective(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	seen := map[string]Tuple{}
	for i := 0; i < 2000; i++ {
		n := r.Intn(4) + 1
		tu := make(Tuple, n)
		for j := range tu {
			a := r.Intn(300) + 1
			tu[j] = Span{a, a + r.Intn(300)}
		}
		k := tu.Key()
		if prev, ok := seen[k]; ok && prev.Compare(tu) != 0 {
			t.Fatalf("key collision: %v vs %v", prev, tu)
		}
		seen[k] = tu.Clone()
	}
}

func TestQuickVarListUnionIdempotent(t *testing.T) {
	f := func(xs []string) bool {
		vl := NewVarList(xs...)
		return vl.Union(vl).Equal(vl) && vl.Intersect(vl).Equal(vl) && len(vl.Minus(vl)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompareTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	randSpan := func() Span {
		a := r.Intn(10) + 1
		return Span{a, a + r.Intn(10)}
	}
	for i := 0; i < 1000; i++ {
		a, b, c := randSpan(), randSpan(), randSpan()
		if a.Compare(b) < 0 && b.Compare(c) < 0 && a.Compare(c) >= 0 {
			t.Fatalf("transitivity violated: %v %v %v", a, b, c)
		}
		if a.Compare(b) != -b.Compare(a) {
			t.Fatalf("antisymmetry violated: %v %v", a, b)
		}
	}
}
