// Package span defines spans, variable lists, (V,s)-tuples and span
// relations — the data model of document spanners (paper §2.1).
//
// A span of a string s is a half-open interval [i, j⟩ with
// 1 ≤ i ≤ j ≤ |s|+1, identifying the substring s_[i,j⟩ = σ_i … σ_{j−1}.
// Spans are positional: two spans with equal substrings need not be equal.
package span

import (
	"fmt"
	"sort"
	"strings"
)

// Span is the interval [Start, End⟩ with 1-based, inclusive Start and
// exclusive End, following the paper's [i, j⟩ notation. A span is valid for
// a string of length N when 1 ≤ Start ≤ End ≤ N+1.
type Span struct {
	Start int
	End   int
}

// Len returns the number of characters covered by the span.
func (p Span) Len() int { return p.End - p.Start }

// IsEmpty reports whether the span covers no characters.
func (p Span) IsEmpty() bool { return p.Start == p.End }

// ValidFor reports whether p is a span of a string of length n.
func (p Span) ValidFor(n int) bool {
	return 1 <= p.Start && p.Start <= p.End && p.End <= n+1
}

// Substr returns the substring s_[Start,End⟩ of s. It panics if the span is
// not valid for s, mirroring slice-bounds behaviour.
func (p Span) Substr(s string) string { return s[p.Start-1 : p.End-1] }

// String renders the span in the paper's [i, j⟩ notation.
func (p Span) String() string { return fmt.Sprintf("[%d,%d⟩", p.Start, p.End) }

// Compare orders spans by (Start, End). It returns -1, 0 or +1.
func (p Span) Compare(q Span) int {
	switch {
	case p.Start != q.Start:
		if p.Start < q.Start {
			return -1
		}
		return 1
	case p.End != q.End:
		if p.End < q.End {
			return -1
		}
		return 1
	}
	return 0
}

// Contains reports whether q lies within p (q is a subspan of p), i.e. the
// relation extracted by the paper's α_sub formula.
func (p Span) Contains(q Span) bool { return p.Start <= q.Start && q.End <= p.End }

// All enumerates every span of a string of length n in (Start, End) order.
// There are (n+1)(n+2)/2 of them.
func All(n int) []Span {
	out := make([]Span, 0, (n+1)*(n+2)/2)
	for i := 1; i <= n+1; i++ {
		for j := i; j <= n+1; j++ {
			out = append(out, Span{i, j})
		}
	}
	return out
}

// VarList is a sorted, duplicate-free list of variable names. It fixes the
// column order of tuples: Tuple[k] is the span of Vars[k].
type VarList []string

// NewVarList sorts and deduplicates names into a VarList.
func NewVarList(names ...string) VarList {
	vs := append([]string(nil), names...)
	sort.Strings(vs)
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || vs[i-1] != v {
			out = append(out, v)
		}
	}
	return VarList(out)
}

// Index returns the position of name in the list, or -1.
func (vl VarList) Index(name string) int {
	lo, hi := 0, len(vl)
	for lo < hi {
		mid := (lo + hi) / 2
		if vl[mid] < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(vl) && vl[lo] == name {
		return lo
	}
	return -1
}

// Contains reports whether name is in the list.
func (vl VarList) Contains(name string) bool { return vl.Index(name) >= 0 }

// Equal reports whether two lists contain the same names.
func (vl VarList) Equal(o VarList) bool {
	if len(vl) != len(o) {
		return false
	}
	for i := range vl {
		if vl[i] != o[i] {
			return false
		}
	}
	return true
}

// Union returns the sorted union of the two lists.
func (vl VarList) Union(o VarList) VarList {
	return NewVarList(append(append([]string(nil), vl...), o...)...)
}

// Intersect returns the sorted intersection of the two lists.
func (vl VarList) Intersect(o VarList) VarList {
	var out []string
	for _, v := range vl {
		if o.Contains(v) {
			out = append(out, v)
		}
	}
	return VarList(out)
}

// Minus returns vl \ o.
func (vl VarList) Minus(o VarList) VarList {
	var out []string
	for _, v := range vl {
		if !o.Contains(v) {
			out = append(out, v)
		}
	}
	return VarList(out)
}

// String renders the list as {x, y, z}.
func (vl VarList) String() string {
	return "{" + strings.Join(vl, ", ") + "}"
}

// Tuple is a (V,s)-tuple: one span per variable of an associated VarList,
// in the same order. The empty tuple (no variables) is the Boolean "true"
// witness.
type Tuple []Span

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Compare orders tuples lexicographically by span.
func (t Tuple) Compare(o Tuple) int {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(o[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(o):
		return -1
	case len(t) > len(o):
		return 1
	}
	return 0
}

// Key encodes the tuple as a compact comparable string, usable as a map key
// for deduplication.
func (t Tuple) Key() string {
	var sb strings.Builder
	sb.Grow(len(t) * 8)
	for _, p := range t {
		putUvarint(&sb, uint64(p.Start))
		putUvarint(&sb, uint64(p.End))
	}
	return sb.String()
}

func putUvarint(sb *strings.Builder, v uint64) {
	for v >= 0x80 {
		sb.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	sb.WriteByte(byte(v))
}

// Format renders the tuple against its variable list, e.g.
// "x=[1,3⟩ y=[2,2⟩".
func (t Tuple) Format(vars VarList) string {
	parts := make([]string, len(t))
	for i, p := range t {
		parts[i] = vars[i] + "=" + p.String()
	}
	return strings.Join(parts, " ")
}
