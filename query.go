package spanjoin

import (
	"context"
	"fmt"
	"sync"

	"spanjoin/internal/core"
	"spanjoin/internal/enum"
	"spanjoin/internal/prefilter"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// Strategy selects how a query is evaluated.
type Strategy = core.Strategy

const (
	// StrategyAuto follows the paper's tractability conditions: the
	// canonical relational plan when every atom is polynomially bounded and
	// the query is acyclic, compilation to automata otherwise.
	StrategyAuto = core.Auto
	// StrategyCanonical materializes every atom's span relation and
	// evaluates relationally (Yannakakis on acyclic queries).
	StrategyCanonical = core.Canonical
	// StrategyAutomata compiles the query into one vset-automaton and
	// enumerates it with polynomial delay.
	StrategyAutomata = core.Automata
)

// Option configures query evaluation.
type Option func(*core.Options)

// WithStrategy forces an evaluation strategy.
func WithStrategy(s Strategy) Option {
	return func(o *core.Options) { o.Strategy = s }
}

// WithPolyBoundVarLimit sets the variable-count threshold under which an
// atom is assumed polynomially bounded without running the key-attribute
// test (default 1).
func WithPolyBoundVarLimit(k int) Option {
	return func(o *core.Options) { o.PolyBoundVarLimit = k }
}

// Query is a conjunctive query over regex atoms, optionally with
// string-equality predicates and a projection — the paper's regex CQ
// (with string equalities):
//
//	π_Y ( ζ=_{x1,y1} … ζ=_{xm,ym} (α1 ⋈ … ⋈ αk) )
type Query struct {
	cq *core.CQ

	// Document-independent compilation artifacts, memoized per Query (a
	// built Query is immutable): the full automata-plan compilation
	// (equality-free queries), its enum.Plan (closures + byte-class
	// transition table, shared by every corpus worker and Eval call), and
	// the bare atom join (the hoistable prefix of the plan when equalities
	// must still compile per document).
	compileOnce sync.Once
	compiled    *vsa.VSA
	compileErr  error
	planOnce    sync.Once
	plan        *enum.Plan
	planErr     error
	joinOnce    sync.Once
	joined      *vsa.VSA
	joinErr     error
}

// compiledAutomaton memoizes CQ.Compile: joins plus pushed-in projection
// (valid only for equality-free queries).
func (q *Query) compiledAutomaton() (*vsa.VSA, error) {
	q.compileOnce.Do(func() { q.compiled, q.compileErr = q.cq.Compile() })
	return q.compiled, q.compileErr
}

// compiledPlan memoizes the enum.Plan of the compiled automaton, so every
// evaluation of an equality-free query — per document or corpus-wide —
// shares one trimmed automaton, closure set and transition table. built
// reports whether this call ran the compilation (see Spanner.compiledPlan).
func (q *Query) compiledPlan() (p *enum.Plan, built bool, err error) {
	q.planOnce.Do(func() {
		built = true
		auto, err := q.compiledAutomaton()
		if err != nil {
			q.planErr = err
			return
		}
		q.plan, q.planErr = enum.NewPlan(auto)
	})
	return q.plan, built, q.planErr
}

// joinedAtoms memoizes CQ.JoinAtoms: the document-independent join prefix
// of the automata plan.
func (q *Query) joinedAtoms() (*vsa.VSA, error) {
	q.joinOnce.Do(func() { q.joined, q.joinErr = q.cq.JoinAtoms() })
	return q.joined, q.joinErr
}

// QueryBuilder assembles a Query; errors accumulate and surface at Build.
type QueryBuilder struct {
	cq  *core.CQ
	err error
}

// NewQuery starts a query builder.
func NewQuery() *QueryBuilder {
	return &QueryBuilder{cq: &core.CQ{}}
}

// Atom adds a regex atom from a pattern.
func (b *QueryBuilder) Atom(pattern string) *QueryBuilder {
	return b.AtomNamed(fmt.Sprintf("atom%d", len(b.cq.Atoms)+1), pattern)
}

// AtomNamed adds a named regex atom (names appear in error messages).
func (b *QueryBuilder) AtomNamed(name, pattern string) *QueryBuilder {
	if b.err != nil {
		return b
	}
	a, err := core.NewAtom(name, pattern)
	if err != nil {
		b.err = err
		return b
	}
	b.cq.Atoms = append(b.cq.Atoms, a)
	return b
}

// AtomSpanner adds a precompiled spanner as an atom.
func (b *QueryBuilder) AtomSpanner(name string, s *Spanner) *QueryBuilder {
	if b.err != nil {
		return b
	}
	a, err := core.AtomFromVSA(name, s.vsa())
	if err != nil {
		b.err = err
		return b
	}
	// The spanner's compile-time requirement transfers to the atom (the
	// automaton alone cannot reproduce it).
	a.Req = s.requirement()
	b.cq.Atoms = append(b.cq.Atoms, a)
	return b
}

// Equal adds the string-equality predicate ζ=_{x,y}: x and y must span
// equal substrings (possibly at different positions). Equality predicates
// are compiled per input string at evaluation time (Theorem 5.4).
func (b *QueryBuilder) Equal(x, y string) *QueryBuilder {
	if b.err != nil {
		return b
	}
	b.cq.Equalities = append(b.cq.Equalities, [2]string{x, y})
	return b
}

// Project restricts the output to the given variables. Projecting onto no
// variables yields a Boolean query.
func (b *QueryBuilder) Project(vars ...string) *QueryBuilder {
	if b.err != nil {
		return b
	}
	b.cq.Projection = span.NewVarList(vars...)
	return b
}

// Build validates and returns the query.
func (b *QueryBuilder) Build() (*Query, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.cq.Validate(); err != nil {
		return nil, err
	}
	return &Query{cq: b.cq}, nil
}

// MustBuild panics on error; for statically known queries.
func (b *QueryBuilder) MustBuild() *Query {
	q, err := b.Build()
	if err != nil {
		panic(err)
	}
	return q
}

// Vars lists the output variables.
func (q *Query) Vars() []string { return append([]string(nil), q.cq.OutVars()...) }

// RequiredLiterals exposes the query's plan-level prefilter: every result
// document must contain every returned literal (the conjunction of the
// atoms' requirements — a result tuple joins all atoms). Empty when no
// atom yields a factor.
func (q *Query) RequiredLiterals() []string { return q.cq.Requirement().Literals() }

// requirement exposes the prefilter requirement to the corpus layer.
func (q *Query) requirement() prefilter.Requirement { return q.cq.Requirement() }

// IsAcyclic reports alpha-acyclicity of the query hypergraph (atoms plus
// equality predicates).
func (q *Query) IsAcyclic() bool { return q.cq.IsAcyclic() }

// IsGammaAcyclic reports gamma-acyclicity of the query hypergraph.
func (q *Query) IsGammaAcyclic() bool { return q.cq.IsGammaAcyclic() }

// Evaluate materializes all result tuples on doc.
func (q *Query) Evaluate(doc string, opts ...Option) ([]Match, error) {
	ms, err := q.Iterate(doc, opts...)
	if err != nil {
		return nil, err
	}
	var out []Match
	for {
		m, ok := ms.Next()
		if !ok {
			return out, nil
		}
		out = append(out, m)
	}
}

// Iterate evaluates the query and returns a tuple iterator. Under
// StrategyAutomata (and for k-bounded queries under StrategyAuto) the
// iterator has polynomial delay (Theorem 3.11 / Corollary 5.5).
func (q *Query) Iterate(doc string, opts ...Option) (*Matches, error) {
	o := buildOptions(opts)
	it, err := q.cq.Enumerate(doc, o)
	if err != nil {
		return nil, err
	}
	return &Matches{it: it, vars: it.Vars(), doc: doc}, nil
}

// IterateCtx is Iterate with cancellation: the returned iterator checks
// ctx periodically and stops once it is done. After Next returns ok=false,
// a cancelled iteration is indistinguishable from exhaustion here; use
// Corpus.EvalQuery when the distinction matters (its stream reports Err).
func (q *Query) IterateCtx(ctx context.Context, doc string, opts ...Option) (*Matches, error) {
	o := buildOptions(opts)
	it, err := q.cq.Enumerate(doc, o)
	if err != nil {
		return nil, err
	}
	cit := core.WithContext(ctx, it)
	return &Matches{it: cit, vars: cit.Vars(), doc: doc}, nil
}

// Exists decides Boolean satisfaction: whether the query has at least one
// result on doc.
func (q *Query) Exists(doc string, opts ...Option) (bool, error) {
	ms, err := q.Iterate(doc, opts...)
	if err != nil {
		return false, err
	}
	_, ok := ms.Next()
	return ok, nil
}

func buildOptions(opts []Option) core.Options {
	var o core.Options
	for _, f := range opts {
		f(&o)
	}
	return o
}

// UnionQuery is a union of conjunctive queries (the paper's regex UCQ).
// All disjuncts must share the same output variables.
type UnionQuery struct {
	ucq *core.UCQ
}

// NewUnion combines queries into a UCQ.
func NewUnion(qs ...*Query) (*UnionQuery, error) {
	u := &core.UCQ{}
	for _, q := range qs {
		u.Disjuncts = append(u.Disjuncts, q.cq)
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return &UnionQuery{ucq: u}, nil
}

// Vars lists the output variables.
func (u *UnionQuery) Vars() []string { return append([]string(nil), u.ucq.OutVars()...) }

// RequiredLiterals exposes the union's prefilter: a result may come from
// any disjunct, so only literals every disjunct requires remain necessary.
func (u *UnionQuery) RequiredLiterals() []string { return u.ucq.Requirement().Literals() }

// Evaluate materializes all result tuples on doc, duplicate free across
// disjuncts.
func (u *UnionQuery) Evaluate(doc string, opts ...Option) ([]Match, error) {
	ms, err := u.Iterate(doc, opts...)
	if err != nil {
		return nil, err
	}
	var out []Match
	for {
		m, ok := ms.Next()
		if !ok {
			return out, nil
		}
		out = append(out, m)
	}
}

// Iterate evaluates the UCQ. Under the automata strategy the entire union
// compiles into one vset-automaton whose enumeration is duplicate free by
// construction (Lemma 3.9 + Theorem 3.3).
func (u *UnionQuery) Iterate(doc string, opts ...Option) (*Matches, error) {
	o := buildOptions(opts)
	it, err := u.ucq.Enumerate(doc, o)
	if err != nil {
		return nil, err
	}
	return &Matches{it: it, vars: it.Vars(), doc: doc}, nil
}

// PlannedStrategy reports which strategy Evaluate would use for the given
// options (resolving StrategyAuto against the paper's tractability
// conditions: acyclic shape plus polynomially bounded atoms → canonical).
func (q *Query) PlannedStrategy(opts ...Option) Strategy {
	return q.cq.Plan(buildOptions(opts))
}
