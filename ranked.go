package spanjoin

import (
	"context"
	"math/big"
	"math/rand"
	"strconv"

	"spanjoin/internal/core"
	"spanjoin/internal/enum"
	"spanjoin/internal/ranked"
	"spanjoin/internal/span"
)

// MatchCount is an exact result count. Result sets can be exponential in
// the document (and, corpus-wide, astronomically large), so the count
// carries a uint64 fast path with an exact big.Int escape beyond 2^64.
// The zero value is 0.
type MatchCount struct {
	u uint64
	b *big.Int // non-nil iff the value does not fit in a uint64
}

// newMatchCount converts an internal ranked count.
func newMatchCount(c ranked.Count) MatchCount {
	if u, ok := c.Uint64(); ok {
		return MatchCount{u: u}
	}
	return MatchCount{b: c.BigInt()}
}

// Uint64 returns the count and whether it fits in a uint64.
func (c MatchCount) Uint64() (uint64, bool) { return c.u, c.b == nil }

// BigInt returns the exact count as a freshly allocated big.Int.
func (c MatchCount) BigInt() *big.Int {
	if c.b != nil {
		return new(big.Int).Set(c.b)
	}
	return new(big.Int).SetUint64(c.u)
}

// IsZero reports whether the count is 0.
func (c MatchCount) IsZero() bool { return c.b == nil && c.u == 0 }

// String renders the exact count in decimal (also a valid JSON number).
func (c MatchCount) String() string {
	if c.b != nil {
		return c.b.String()
	}
	return strconv.FormatUint(c.u, 10)
}

// Count returns the exact number of matches of the spanner on doc without
// enumerating them: one layered-graph build plus the ranked path-count DP
// (internal/ranked) — time independent of the result count, which Eval
// would pay in full. WithTimeout bounds the graph build, the document-
// length-dependent part (the ctxthread contract for counting entry
// points); an interrupted build reports context.DeadlineExceeded rather
// than a silent zero.
func (s *Spanner) Count(doc string, opts ...Option) (MatchCount, error) {
	r, err := s.rankedOpts(doc, buildOptions(opts))
	if err != nil {
		return MatchCount{}, err
	}
	return r.Count(), nil
}

// Sample returns k matches drawn i.i.d. uniformly from the result set on
// doc (with replacement) without enumerating it; nil when there are no
// matches. Uniformity is exact at any result-set size, including counts
// beyond uint64. WithTimeout bounds the underlying graph build, as for
// Count.
func (s *Spanner) Sample(doc string, rng *rand.Rand, k int, opts ...Option) ([]Match, error) {
	r, err := s.rankedOpts(doc, buildOptions(opts))
	if err != nil {
		return nil, err
	}
	return r.Sample(rng, k), nil
}

// Ranked is a ranked-access view of one spanner evaluation: exact
// counting, direct access to the i-th match in the enumeration's
// canonical radix order, uniform sampling, and offset/limit pagination —
// none of which drains the result set. The underlying graph and DP are
// built once by Spanner.Ranked and shared by every call. A Ranked is not
// safe for concurrent use; open one per goroutine.
type Ranked struct {
	e    *enum.Enumerator // nil when the prefilter proved emptiness
	vars span.VarList
	doc  string
	wbuf []int32
}

// Ranked preprocesses doc for ranked access. The cost is one layered-
// graph build plus one path-count DP — independent of how many matches
// there are; the spanner's compiled plan is memoized as usual.
func (s *Spanner) Ranked(doc string) (*Ranked, error) {
	return s.rankedOpts(doc, core.Options{})
}

// rankedOpts is Ranked with the resilience knobs applied: a Timeout
// interrupts the layered-graph build (its cost is document-length
// dependent; the DP that follows is not) and surfaces as the context's
// DeadlineExceeded instead of an empty view.
func (s *Spanner) rankedOpts(doc string, o core.Options) (*Ranked, error) {
	if s.prefilterEmpty(doc) {
		return &Ranked{vars: s.auto.Vars, doc: doc}, nil
	}
	p, _, err := s.compiledPlan()
	if err != nil {
		return nil, err
	}
	if o.Timeout <= 0 {
		return &Ranked{e: p.Prepare(doc), vars: p.Vars(), doc: doc}, nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), o.Timeout)
	defer cancel()
	e := p.NewEnumerator()
	e.SetInterrupt(func() bool { return ctx.Err() != nil })
	e.Reset(doc)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Ranked{e: e, vars: p.Vars(), doc: doc}, nil
}

// Count returns the exact number of matches in O(1) after the view's
// one-time DP.
func (r *Ranked) Count() MatchCount {
	if r.e == nil {
		return MatchCount{}
	}
	return newMatchCount(r.e.Rank().Count())
}

// ResultAt returns the i-th match (0-based) of the enumeration's
// deterministic order via one weighted DAG descent — cost independent of
// i; ok is false when i ≥ Count. For result sets larger than 2^64, ranks
// past uint64 are reachable with ResultAtBig.
func (r *Ranked) ResultAt(i uint64) (Match, bool) {
	if r.e == nil {
		return Match{}, false
	}
	w, ok := r.e.Rank().WordAt(i, r.wbuf)
	if !ok {
		return Match{}, false
	}
	r.wbuf = w
	return Match{vars: r.vars, tuple: r.e.DecodeLetters(w), doc: r.doc}, true
}

// ResultAtBig is ResultAt for arbitrary-precision ranks: on result sets
// beyond 2^64 every rank below Count stays addressable. i must be
// non-negative and is not modified; ok is false when i ≥ Count.
func (r *Ranked) ResultAtBig(i *big.Int) (Match, bool) {
	if r.e == nil {
		return Match{}, false
	}
	w, ok := r.e.Rank().WordAtBig(i, r.wbuf)
	if !ok {
		return Match{}, false
	}
	r.wbuf = w
	return Match{vars: r.vars, tuple: r.e.DecodeLetters(w), doc: r.doc}, true
}

// Sample returns k matches drawn i.i.d. uniformly from the result set
// (with replacement); nil when there are no matches or k ≤ 0.
func (r *Ranked) Sample(rng *rand.Rand, k int) []Match {
	if r.e == nil || k <= 0 {
		return nil
	}
	rk := r.e.Rank()
	out := make([]Match, 0, k)
	for i := 0; i < k; i++ {
		w, ok := rk.SampleWord(rng, r.wbuf)
		if !ok {
			return nil
		}
		r.wbuf = w
		out = append(out, Match{vars: r.vars, tuple: r.e.DecodeLetters(w), doc: r.doc})
	}
	return out
}

// Page returns up to limit matches starting at offset, in enumeration
// order: one DAG descent positions the cursor, then limit Next steps
// stream the page — a page deep in the result set does not pay for the
// matches before it. Pages may be requested in any order.
func (r *Ranked) Page(offset uint64, limit int) []Match {
	if r.e == nil || limit <= 0 {
		return nil
	}
	w, ok := r.e.Rank().WordAt(offset, r.wbuf)
	if !ok {
		return nil
	}
	r.wbuf = w
	if !r.e.SeekLetters(w) {
		return nil
	}
	out := make([]Match, 0, limit)
	for len(out) < limit {
		t, ok := r.e.Next()
		if !ok {
			break
		}
		out = append(out, Match{vars: r.vars, tuple: t, doc: r.doc})
	}
	return out
}

// skipStepThreshold is the skip depth below which stepping the cursor
// beats building the ranked DP: a shallow skip costs a few polynomial
// Next steps, while the DP's determinization is worst-case exponential
// in the automaton size. Once the rank is already memoized (a prior
// Count, Skip or ranked call), the descent is always used.
const skipStepThreshold = 16

// Skip advances past the next n matches without materializing them,
// returning how many were actually skipped (less than n only when the
// result set ends first). On enumerator-backed streams (Spanner.Iterate,
// Stream.Iterate) a deep skip is one ranked DAG descent — cost
// independent of n; other iterators (query plans, context wrappers) fall
// back to n Next calls. On result sets larger than 2^64, skips
// cumulating past rank 2^64-1 are refused (Skip returns 0 and the cursor
// stays put): the stream cursor addresses uint64 ranks — use
// Ranked.ResultAtBig with explicit arbitrary-precision indices for exact
// access beyond that.
func (ms *Matches) Skip(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	if e, ok := ms.it.(*enum.Enumerator); ok && (n > skipStepThreshold || e.RankBuilt()) {
		r := e.Rank()
		target, wrapped := ms.consumed+n, ms.consumed+n < ms.consumed
		if total, fits := r.Count().Uint64(); fits && (wrapped || target >= total) {
			skipped := total - ms.consumed
			ms.consumed = total
			ms.it = emptyIter{}
			return skipped
		}
		if wrapped {
			// A big result set and a target past rank 2^64-1: refuse
			// rather than reposition to (and misreport) a clamped rank.
			return 0
		}
		if w, ok := r.WordAt(target, nil); ok && e.SeekLetters(w) {
			ms.consumed = target
			return n
		}
		// Unreachable on a consistent rank — but a failed SeekLetters
		// leaves the cursor unspecified, so fail safe rather than step a
		// possibly corrupted enumeration.
		ms.it = emptyIter{}
		return 0
	}
	var k uint64
	for k < n {
		if _, ok := ms.it.Next(); !ok {
			break
		}
		k++
		ms.consumed++
	}
	return k
}
