package spanjoin_test

import (
	"context"
	"sort"
	"strings"
	"testing"

	"spanjoin"
)

func hasLiteral(lits []string, want string) bool {
	for _, l := range lits {
		if l == want {
			return true
		}
	}
	return false
}

// TestJoinCarriesPrefilter is the regression test for the composition bug:
// Join used to return a spanner with no required literal, silently paying
// full preprocessing on every document. The joined spanner must require
// both operands' factors and skip corpus documents lacking either.
func TestJoinCarriesPrefilter(t *testing.T) {
	a := spanjoin.MustCompile(`.*x{ERROR}.*`)
	b := spanjoin.MustCompile(`.*y{disk}.*`)
	j, err := spanjoin.Join(a, b)
	if err != nil {
		t.Fatal(err)
	}
	lits := j.RequiredLiterals()
	if !hasLiteral(lits, "ERROR") || !hasLiteral(lits, "disk") {
		t.Fatalf("joined spanner requires %q, want both ERROR and disk", lits)
	}
	if j.RequiredLiteral() == "" {
		t.Fatal("joined spanner dropped its required literal")
	}

	c := spanjoin.NewCorpus(spanjoin.WithShards(2))
	match := c.Add("ERROR on disk")
	c.Add("ERROR but not the other word")
	c.Add("disk fine")
	c.Add("nothing at all")
	ms, err := c.EvalSpanner(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	// spanlint/closecheck: release the stream's pool slot.
	defer ms.Close()
	count := map[spanjoin.DocID]int{}
	for {
		m, ok := ms.Next()
		if !ok {
			break
		}
		count[m.Doc]++
	}
	if err := ms.Err(); err != nil {
		t.Fatal(err)
	}
	if len(count) != 1 || count[match] == 0 {
		t.Fatalf("join matched docs %v, want only %d", count, match)
	}
	st := ms.Stats()
	if st.Scanned != 1 || st.Skipped != 3 {
		t.Fatalf("stats = %+v, want 1 scanned / 3 skipped", st)
	}
}

// TestProjectCarriesPrefilter: projection changes the output schema, never
// the matching documents, so the operand's full requirement must survive.
func TestProjectCarriesPrefilter(t *testing.T) {
	a := spanjoin.MustCompile(`.*x{ERROR}.*y{disk}.*`)
	p, err := spanjoin.Project(a, "x")
	if err != nil {
		t.Fatal(err)
	}
	lits := p.RequiredLiterals()
	if !hasLiteral(lits, "ERROR") || !hasLiteral(lits, "disk") {
		t.Fatalf("projected spanner requires %q, want both ERROR and disk", lits)
	}
	// Non-matching document: prefilter fast path must stay correct.
	ms, err := p.Eval("no factors here")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("got %d matches on a doc without the factors", len(ms))
	}
	// Matching document: projection must still evaluate normally.
	ms, err = p.Eval("an ERROR hit the disk")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].MustSubstr("x") != "ERROR" {
		t.Fatalf("projected eval = %v", ms)
	}
	// Corpus-level skip, observed through the stats.
	c := spanjoin.NewCorpus(spanjoin.WithShards(3))
	c.AddAll("an ERROR hit the disk", "clean run", "ERROR only")
	cms, err := c.EvalSpanner(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	// spanlint/closecheck: release the stream's pool slot.
	defer cms.Close()
	n := 0
	for {
		if _, ok := cms.Next(); !ok {
			break
		}
		n++
	}
	if err := cms.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("corpus matches = %d, want 1", n)
	}
	if st := cms.Stats(); st.Skipped != 2 {
		t.Fatalf("stats = %+v, want 2 skipped", st)
	}
}

// TestUnionPrefilter: a union keeps only factors every branch implies.
func TestUnionPrefilter(t *testing.T) {
	a := spanjoin.MustCompile(`.*x{ERROR}.*`)
	b := spanjoin.MustCompile(`.*x{ERRORS}.*`)
	u, err := spanjoin.Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// "ERRORS" contains "ERROR": the shorter factor stays necessary.
	if got := u.RequiredLiteral(); got != "ERROR" {
		t.Fatalf("union requires %q, want ERROR", got)
	}
	// Disjoint branches must require nothing — anything else would skip
	// documents that one branch matches.
	c := spanjoin.MustCompile(`.*x{disk}.*`)
	u2, err := spanjoin.Union(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if lits := u2.RequiredLiterals(); len(lits) != 0 {
		t.Fatalf("disjoint union requires %q, want nothing", lits)
	}
	// Soundness: the union still matches documents of either branch.
	for _, doc := range []string{"an ERROR here", "a disk there"} {
		ms, err := u2.Eval(doc)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 1 {
			t.Fatalf("union on %q: %d matches, want 1", doc, len(ms))
		}
	}
}

// TestEvalQueryPrefilters is the regression test for the corpus fast path:
// equality-free EvalQuery passed no requirement and scanned every
// document. It must now prefilter identically to EvalSpanner, under both
// the compiled fast path and the forced canonical per-document path.
func TestEvalQueryPrefilters(t *testing.T) {
	q := spanjoin.NewQuery().
		Atom(`.*x{ERROR}.*`).
		Atom(`.*y{disk}.*`).
		MustBuild()
	lits := q.RequiredLiterals()
	if !hasLiteral(lits, "ERROR") || !hasLiteral(lits, "disk") {
		t.Fatalf("query requires %q, want both ERROR and disk", lits)
	}

	c := spanjoin.NewCorpus(spanjoin.WithShards(2))
	match := c.Add("ERROR on disk")
	c.Add("ERROR alone")
	c.Add("disk alone")
	c.Add("neither")

	for _, opts := range [][]spanjoin.Option{
		nil, // fast path (equality-free, compiled once)
		{spanjoin.WithStrategy(spanjoin.StrategyCanonical)}, // per-document path
	} {
		ms, err := c.EvalQuery(context.Background(), q, opts...)
		if err != nil {
			t.Fatal(err)
		}
		count := map[spanjoin.DocID]int{}
		for {
			m, ok := ms.Next()
			if !ok {
				break
			}
			count[m.Doc]++
		}
		if err := ms.Err(); err != nil {
			t.Fatal(err)
		}
		if len(count) != 1 || count[match] == 0 {
			t.Fatalf("opts %v: matched %v, want only doc %d", opts, count, match)
		}
		st := ms.Stats()
		if st.Scanned != 1 || st.Skipped != 3 {
			t.Fatalf("opts %v: stats = %+v, want 1 scanned / 3 skipped", opts, st)
		}
		// spanlint/closecheck: release each round's stream before the next.
		ms.Close()
	}
}

// matchKey renders a corpus/query match as var=span pairs, sorted, so two
// evaluations can be compared variable-by-variable regardless of internal
// column order.
func matchKey(m spanjoin.Match) string {
	vars := m.Vars()
	sort.Strings(vars)
	parts := make([]string, 0, len(vars))
	for _, v := range vars {
		p, ok := m.Span(v)
		if !ok {
			parts = append(parts, v+"=?")
			continue
		}
		parts = append(parts, v+"="+p.String())
	}
	return strings.Join(parts, " ")
}

// TestEvalQueryAgreesWithIterate: the corpus per-document path labels
// tuples with the query's OutVars; Query.Iterate labels them with the
// per-iterator vars. Both must agree variable-by-variable on every
// document, across canonical and automata strategies, with and without
// string equalities (the latter exercising the per-document plan).
func TestEvalQueryAgreesWithIterate(t *testing.T) {
	docs := []string{
		"ERROR on disk disk",
		"ERROR alone",
		"disk disk",
		"",
		"ERROR disk ERROR",
	}
	queries := map[string]*spanjoin.Query{
		"plain": spanjoin.NewQuery().
			Atom(`.*x{ERROR}.*`).
			Atom(`.*y{disk}.*`).
			MustBuild(),
		"projected": spanjoin.NewQuery().
			Atom(`.*x{ERROR}.*`).
			Atom(`.*y{disk}.*`).
			Project("x").
			MustBuild(),
		"equality": spanjoin.NewQuery().
			Atom(`.*x{disk}.*`).
			Atom(`.*y{disk}.*`).
			Equal("x", "y").
			MustBuild(),
	}
	strategies := map[string]spanjoin.Strategy{
		"canonical": spanjoin.StrategyCanonical,
		"automata":  spanjoin.StrategyAutomata,
	}
	for qname, q := range queries {
		for sname, strat := range strategies {
			c := spanjoin.NewCorpus(spanjoin.WithShards(3))
			ids := c.AddAll(docs...)
			ms, err := c.EvalQuery(context.Background(), q, spanjoin.WithStrategy(strat))
			if err != nil {
				t.Fatal(err)
			}
			got := map[spanjoin.DocID]map[string]int{}
			for {
				m, ok := ms.Next()
				if !ok {
					break
				}
				if got[m.Doc] == nil {
					got[m.Doc] = map[string]int{}
				}
				got[m.Doc][matchKey(m.Match)]++
			}
			if err := ms.Err(); err != nil {
				t.Fatal(err)
			}
			// spanlint/closecheck: release the exhausted stream.
			ms.Close()
			for i, doc := range docs {
				it, err := q.Iterate(doc, spanjoin.WithStrategy(strat))
				if err != nil {
					t.Fatal(err)
				}
				want := map[string]int{}
				for {
					m, ok := it.Next()
					if !ok {
						break
					}
					want[matchKey(m)]++
				}
				// spanlint/closecheck: a failure here must not read as exhaustion.
				if err := it.Err(); err != nil {
					t.Fatal(err)
				}
				have := got[ids[i]]
				if len(have) == 0 && len(want) == 0 {
					continue
				}
				if len(have) != len(want) {
					t.Fatalf("%s/%s doc %q: corpus %v, iterate %v", qname, sname, doc, have, want)
				}
				for k, n := range want {
					if have[k] != n {
						t.Fatalf("%s/%s doc %q: key %q corpus=%d iterate=%d", qname, sname, doc, k, have[k], n)
					}
				}
			}
		}
	}
}

// TestIndexedCorpusMatchesUnindexed: WithIndex must never change results,
// only reduce the scanned set.
func TestIndexedCorpusMatchesUnindexed(t *testing.T) {
	docs := []string{
		"an ERROR hit the disk", "all quiet", "ERROR ERROR", "disk spinning",
		"the ERRORS pile up on disk", "", "short", "ERR OR disk",
	}
	sp := spanjoin.MustCompileSearch(`x{ERROR}`)
	run := func(c *spanjoin.Corpus) (map[spanjoin.DocID]int, spanjoin.EvalStats) {
		ms, err := c.EvalSpanner(context.Background(), sp)
		if err != nil {
			t.Fatal(err)
		}
		// spanlint/closecheck: release the stream's pool slot.
		defer ms.Close()
		count := map[spanjoin.DocID]int{}
		for {
			m, ok := ms.Next()
			if !ok {
				break
			}
			count[m.Doc]++
		}
		if err := ms.Err(); err != nil {
			t.Fatal(err)
		}
		return count, ms.Stats()
	}
	plain := spanjoin.NewCorpus(spanjoin.WithShards(3))
	plainIDs := plain.AddAll(docs...)
	indexed := spanjoin.NewCorpus(spanjoin.WithShards(3), spanjoin.WithIndex())
	indexedIDs := indexed.AddAll(docs...)
	if !indexed.Indexed() || plain.Indexed() {
		t.Fatal("Indexed() flags wrong")
	}
	pc, pst := run(plain)
	ic, ist := run(indexed)
	for i := range docs {
		if pc[plainIDs[i]] != ic[indexedIDs[i]] {
			t.Fatalf("doc %q: plain %d matches, indexed %d", docs[i], pc[plainIDs[i]], ic[indexedIDs[i]])
		}
	}
	if pst.Scanned+pst.Skipped != uint64(len(docs)) || ist.Scanned+ist.Skipped != uint64(len(docs)) {
		t.Fatalf("stats don't cover the corpus: plain %+v indexed %+v", pst, ist)
	}
	if ist.Scanned > pst.Scanned {
		t.Fatalf("index scanned more than the full scan: %+v vs %+v", ist, pst)
	}
}

// TestUnionQueryRequiredLiterals: the UCQ-level prefilter keeps only
// factors every disjunct requires.
func TestUnionQueryRequiredLiterals(t *testing.T) {
	qa := spanjoin.NewQuery().Atom(`.*x{ERROR}.*`).MustBuild()
	qb := spanjoin.NewQuery().Atom(`.*x{ERRORS}.*`).MustBuild()
	u, err := spanjoin.NewUnion(qa, qb)
	if err != nil {
		t.Fatal(err)
	}
	if lits := u.RequiredLiterals(); !hasLiteral(lits, "ERROR") {
		t.Fatalf("union query requires %q, want ERROR", lits)
	}
	qc := spanjoin.NewQuery().Atom(`.*x{disk}.*`).MustBuild()
	u2, err := spanjoin.NewUnion(qa, qc)
	if err != nil {
		t.Fatal(err)
	}
	if lits := u2.RequiredLiterals(); len(lits) != 0 {
		t.Fatalf("disjoint union query requires %q, want nothing", lits)
	}
}
