package spanjoin_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"spanjoin"
	"spanjoin/internal/oracle"
	"spanjoin/internal/span"
	"spanjoin/internal/workload"
)

// tupleOf projects a Match back onto a span.Tuple (aligned with the sorted
// variable list), so corpus output can be compared with the tuple-level
// oracles.
func tupleOf(m spanjoin.Match) span.Tuple {
	vars := m.Vars()
	t := make(span.Tuple, len(vars))
	for i, v := range vars {
		s, ok := m.Span(v)
		if !ok {
			panic("missing variable " + v)
		}
		t[i] = s
	}
	return t
}

// sameTupleMultiset compares tuple slices as multisets: same length and,
// after canonical sorting, pairwise equal — so a lost or duplicated result
// fails even when the set of distinct tuples agrees.
func sameTupleMultiset(a, b []span.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	a, b = append([]span.Tuple(nil), a...), append([]span.Tuple(nil), b...)
	oracle.SortTuples(a)
	oracle.SortTuples(b)
	for i := range a {
		if a[i].Compare(b[i]) != 0 {
			return false
		}
	}
	return true
}

func drainByDoc(t *testing.T, ms *spanjoin.CorpusMatches) map[spanjoin.DocID][]span.Tuple {
	t.Helper()
	out := make(map[spanjoin.DocID][]span.Tuple)
	for {
		m, ok := ms.Next()
		if !ok {
			break
		}
		out[m.Doc] = append(out[m.Doc], tupleOf(m.Match))
	}
	if err := ms.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCorpusEvalMatchesPerDocumentEval: Corpus.Eval must return, per
// document, exactly Spanner.Eval's result — same tuples, same per-document
// order — for every shard/worker geometry.
func TestCorpusEvalMatchesPerDocumentEval(t *testing.T) {
	r := workload.Rand(2024)
	var docs []string
	for i := 0; i < 30; i++ {
		docs = append(docs, workload.Document(r, workload.DocumentOptions{
			Sentences: 3, EmailRate: 0.5,
		}))
	}
	const pattern = `mail{user{[a-z]+}@domain{[a-z]+\.[a-z]+}}`
	sp := spanjoin.MustCompileSearch(pattern)
	for _, shards := range []int{1, 4, 16} {
		c := spanjoin.NewCorpus(spanjoin.WithShards(shards))
		ids := c.AddAll(docs...)
		ms, err := c.EvalSearch(context.Background(), pattern)
		if err != nil {
			t.Fatal(err)
		}
		got := drainByDoc(t, ms)
		for i, doc := range docs {
			ref, err := sp.Eval(doc)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]span.Tuple, len(ref))
			for k, m := range ref {
				want[k] = tupleOf(m)
			}
			have := got[ids[i]]
			if len(have) != len(want) {
				t.Fatalf("shards=%d doc %d: %d matches, want %d", shards, i, len(have), len(want))
			}
			for k := range want {
				if have[k].Compare(want[k]) != 0 {
					t.Fatalf("shards=%d doc %d: order differs at %d", shards, i, k)
				}
			}
		}
	}
}

// TestCorpusMatchBindsDocument: streamed matches must resolve substrings
// against their own document.
func TestCorpusMatchBindsDocument(t *testing.T) {
	c := spanjoin.NewCorpus(spanjoin.WithShards(3))
	c.AddAll("write to alice@example.org now", "or to bob@example.net instead", "no address here")
	ms, err := c.EvalSearch(context.Background(), `mail{[a-z]+@[a-z]+\.[a-z]+}`)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	found := map[string]bool{}
	for {
		m, ok := ms.Next()
		if !ok {
			break
		}
		found[m.Match.MustSubstr("mail")] = true
		doc, ok := c.Doc(m.Doc)
		if !ok || !strings.Contains(doc, m.Match.MustSubstr("mail")) {
			t.Fatalf("match %q does not occur in its document %q", m.Match.MustSubstr("mail"), doc)
		}
	}
	// spanlint/closecheck: a failure here must not read as exhaustion.
	if err := ms.Err(); err != nil {
		t.Fatal(err)
	}
	// The unanchored pattern also matches sub-spans of each address; the
	// full addresses must be among them.
	if !found["alice@example.org"] || !found["bob@example.net"] {
		t.Fatalf("full addresses missing from %v", found)
	}
}

// TestCorpusCompiledQueryCache: repeated queries must hit the cache, and
// anchored/search compilations of one source must not collide.
func TestCorpusCompiledQueryCache(t *testing.T) {
	c := spanjoin.NewCorpus(spanjoin.WithShards(2), spanjoin.WithCacheCapacity(8))
	c.AddAll("aaa", "aab")
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		ms, err := c.Eval(ctx, `x{a+}b?`)
		if err != nil {
			t.Fatal(err)
		}
		// spanlint/closecheck: check the stream before releasing it.
		if err := ms.Err(); err != nil {
			t.Fatal(err)
		}
		ms.Close()
	}
	st := c.CacheStats()
	if st.Misses != 1 || st.Hits != 9 {
		t.Fatalf("stats = %+v, want 1 miss / 9 hits", st)
	}
	if rate := st.HitRate(); rate < 0.89 {
		t.Fatalf("hit rate %.2f, want ≥ 0.9", rate)
	}
	// Same source, different mode: distinct artifact.
	anchored, err := c.Eval(ctx, `x{a+}`)
	if err != nil {
		t.Fatal(err)
	}
	na := len(drainByDoc(t, anchored))
	search, err := c.EvalSearch(ctx, `x{a+}`)
	if err != nil {
		t.Fatal(err)
	}
	ns := len(drainByDoc(t, search))
	if na != 1 || ns != 2 { // anchored matches only "aaa"; search matches both
		t.Fatalf("anchored matched %d docs, search %d; want 1 and 2", na, ns)
	}
	if st := c.CacheStats(); st.Resident != 3 {
		t.Fatalf("resident = %d, want 3 (x{a+}b?, x{a+} anchored, x{a+} search)", st.Resident)
	}
}

func TestCorpusEvalCompileError(t *testing.T) {
	c := spanjoin.NewCorpus()
	if _, err := c.Eval(context.Background(), `x{a}|y{b}`); err == nil {
		t.Fatal("non-functional pattern must fail to compile")
	}
	// The error must not be cached: a later valid pattern with the same
	// prefix still works, and the bad key re-compiles (and re-fails).
	if _, err := c.Eval(context.Background(), `x{a}|y{b}`); err == nil {
		t.Fatal("second compile must fail too")
	}
	if st := c.CacheStats(); st.Resident != 0 {
		t.Fatalf("failed compilations must not be cached; resident = %d", st.Resident)
	}
}

// TestCorpusEvalQueryBothPlans: the compiled fast path (no equalities) and
// the per-document plan (equalities / forced canonical) must agree with
// Query.Evaluate on every document.
func TestCorpusEvalQueryBothPlans(t *testing.T) {
	docs := []string{"abab", "aabb", "ba", "abba", ""}
	ctx := context.Background()

	plain := spanjoin.NewQuery().
		AtomNamed("xs", `(a|b)*x{a+}(a|b)*`).
		AtomNamed("ys", `(a|b)*y{b+}(a|b)*`).
		MustBuild()
	eq := spanjoin.NewQuery().
		AtomNamed("pair", `(a|b)*x{(a|b)+}(a|b)*y{(a|b)+}(a|b)*`).
		Equal("x", "y").
		MustBuild()

	cases := []struct {
		name string
		q    *spanjoin.Query
		opts []spanjoin.Option
	}{
		{"compiled-fast-path", plain, nil},
		{"forced-canonical", plain, []spanjoin.Option{spanjoin.WithStrategy(spanjoin.StrategyCanonical)}},
		{"equalities-per-doc", eq, nil},
	}
	for _, tc := range cases {
		c := spanjoin.NewCorpus(spanjoin.WithShards(3))
		ids := c.AddAll(docs...)
		// Two passes: the second reuses the Query's memoized compilation
		// artifacts and must agree with the first.
		for pass := 0; pass < 2; pass++ {
			ms, err := c.EvalQuery(ctx, tc.q, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			got := drainByDoc(t, ms)
			for i, doc := range docs {
				ref, err := tc.q.Evaluate(doc, tc.opts...)
				if err != nil {
					t.Fatal(err)
				}
				want := make([]span.Tuple, len(ref))
				for k, m := range ref {
					want[k] = tupleOf(m)
				}
				if !sameTupleMultiset(got[ids[i]], want) {
					t.Fatalf("%s pass %d doc %q: corpus %v, per-doc %v", tc.name, pass, doc, got[ids[i]], want)
				}
			}
		}
	}
}

// TestCorpusEvalCancellation: a cancelled context must end the stream and
// surface through Err.
func TestCorpusEvalCancellation(t *testing.T) {
	c := spanjoin.NewCorpus(spanjoin.WithShards(4), spanjoin.WithResultBuffer(1))
	big := strings.Repeat("a", 300)
	for i := 0; i < 16; i++ {
		c.Add(big)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ms, err := c.Eval(ctx, `a*x{a*}a*`)
	if err != nil {
		t.Fatal(err)
	}
	// spanlint/closecheck: release the stream's pool slot.
	defer ms.Close()
	for i := 0; i < 5; i++ {
		if _, ok := ms.Next(); !ok {
			t.Fatal("stream ended before cancel")
		}
	}
	cancel()
	for {
		if _, ok := ms.Next(); !ok {
			break
		}
	}
	if err := ms.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
}

func TestCorpusEvalAll(t *testing.T) {
	c := spanjoin.NewCorpus(spanjoin.WithShards(2))
	ids := c.AddAll("aa", "b", "a")
	got, err := c.EvalAll(context.Background(), `x{a+}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[ids[0]]) != 1 || len(got[ids[2]]) != 1 {
		t.Fatalf("EvalAll = %v", got)
	}
	if _, ok := got[ids[1]]; ok {
		t.Fatal("non-matching document must have no entry")
	}
}
