package spanjoin_test

import (
	"fmt"
	"testing"

	"spanjoin"
)

func matchStrings(ms []spanjoin.Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.String()
	}
	return out
}

func TestStreamMatchesEval(t *testing.T) {
	sp := spanjoin.MustCompile(`.*x{[a-z]+}@y{[a-z]+}.*`)
	docs := []string{
		"mail alice@example now",
		"no at sign here",
		"",
		"bob@site and carol@host",
		"mail alice@example now", // repeat: exercises arena reuse
	}
	st := sp.NewStream()
	for _, doc := range docs {
		want, err := sp.Eval(doc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.Eval(doc)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(matchStrings(got)) != fmt.Sprint(matchStrings(want)) {
			t.Fatalf("doc %q: stream %v, eval %v", doc, got, want)
		}
	}
}

func TestStreamPrefilter(t *testing.T) {
	sp := spanjoin.MustCompile(`.*x{Belgium}.*`)
	st := sp.NewStream()
	ms, err := st.Eval("no such country here")
	if err != nil || len(ms) != 0 {
		t.Fatalf("prefiltered doc: %v, %v", ms, err)
	}
	ms, err = st.Eval("visit Belgium today")
	if err != nil || len(ms) != 1 {
		t.Fatalf("matching doc after prefiltered doc: %v, %v", ms, err)
	}
}

func TestEvalAllAgainstEval(t *testing.T) {
	sp := spanjoin.MustCompile(`.*x{a+}.*y{b+}.*`)
	docs := []string{"aabb", "", "ba", "abab", "bbaa"}
	seq, err := sp.EvalAll(docs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sp.EvalAllParallel(docs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, doc := range docs {
		want, err := sp.Eval(doc)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(matchStrings(seq[i])) != fmt.Sprint(matchStrings(want)) {
			t.Fatalf("EvalAll doc %q: %v vs %v", doc, seq[i], want)
		}
		if fmt.Sprint(matchStrings(par[i])) != fmt.Sprint(matchStrings(want)) {
			t.Fatalf("EvalAllParallel doc %q: %v vs %v", doc, par[i], want)
		}
	}
}

func TestEvalAllParallelEmptyAndSingle(t *testing.T) {
	sp := spanjoin.MustCompile(`.*x{a}.*`)
	if out, err := sp.EvalAllParallel(nil, 4); err != nil || len(out) != 0 {
		t.Fatalf("empty docs: %v, %v", out, err)
	}
	out, err := sp.EvalAllParallel([]string{"xax"}, 8)
	if err != nil || len(out) != 1 || len(out[0]) != 1 {
		t.Fatalf("single doc: %v, %v", out, err)
	}
}
