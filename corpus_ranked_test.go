package spanjoin_test

import (
	"context"
	"sort"
	"testing"

	"spanjoin"
)

func rankedTestCorpus(t *testing.T, opts ...spanjoin.CorpusOption) (*spanjoin.Corpus, []string) {
	t.Helper()
	docs := []string{
		"alice sent mail",
		"no matches here",
		"aa mail mail aa",
		"",
		"mail",
		"bb aa mail",
	}
	c := spanjoin.NewCorpus(opts...)
	c.AddAll(docs...)
	return c, docs
}

func TestCorpusCountMatchesEvalAll(t *testing.T) {
	for _, opts := range [][]spanjoin.CorpusOption{
		{spanjoin.WithShards(2)},
		{spanjoin.WithShards(3), spanjoin.WithIndex()},
	} {
		c, _ := rankedTestCorpus(t, opts...)
		const pattern = `.*x{mail}.*`
		all, err := c.EvalAll(context.Background(), pattern)
		if err != nil {
			t.Fatal(err)
		}
		wantTotal := uint64(0)
		for _, ms := range all {
			wantTotal += uint64(len(ms))
		}
		n, err := c.Count(context.Background(), pattern)
		if err != nil {
			t.Fatal(err)
		}
		if u, ok := n.Uint64(); !ok || u != wantTotal {
			t.Fatalf("Count = %v, EvalAll found %d", n, wantTotal)
		}
		per, err := c.CountAll(context.Background(), pattern)
		if err != nil {
			t.Fatal(err)
		}
		if len(per) != len(all) {
			t.Fatalf("CountAll has %d docs, EvalAll %d", len(per), len(all))
		}
		for id, ms := range all {
			if u, ok := per[id].Uint64(); !ok || u != uint64(len(ms)) {
				t.Fatalf("doc %d: CountAll %v, EvalAll %d", id, per[id], len(ms))
			}
		}
	}
}

func TestCorpusCountQuery(t *testing.T) {
	c, _ := rankedTestCorpus(t, spanjoin.WithShards(2))
	q := spanjoin.NewQuery().
		Atom(`.*x{mail}.*`).
		Atom(`.*y{aa}.*`).
		MustBuild()
	ref, err := c.EvalQuery(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	// spanlint/closecheck: release the stream's pool slot.
	defer ref.Close()
	want := uint64(0)
	for {
		if _, ok := ref.Next(); !ok {
			break
		}
		want++
	}
	if err := ref.Err(); err != nil {
		t.Fatal(err)
	}
	n, err := c.CountQuery(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if u, ok := n.Uint64(); !ok || u != want {
		t.Fatalf("CountQuery = %v, EvalQuery drained %d", n, want)
	}
	// Forced canonical drains per document; counts must agree.
	canon, err := c.CountQuery(context.Background(), q, spanjoin.WithStrategy(spanjoin.StrategyCanonical))
	if err != nil {
		t.Fatal(err)
	}
	if canon.String() != n.String() {
		t.Fatalf("canonical CountQuery %v != ranked %v", canon, n)
	}

	// With equalities: the per-document drain path.
	eq := spanjoin.NewQuery().
		Atom(`.*x{[a-z]+} .*y{[a-z]+}.*`).
		Equal("x", "y").
		MustBuild()
	eqRef, err := c.EvalQuery(context.Background(), eq)
	if err != nil {
		t.Fatal(err)
	}
	// spanlint/closecheck: release the stream's pool slot.
	defer eqRef.Close()
	wantEq := uint64(0)
	for {
		if _, ok := eqRef.Next(); !ok {
			break
		}
		wantEq++
	}
	if err := eqRef.Err(); err != nil {
		t.Fatal(err)
	}
	eqN, err := c.CountQuery(context.Background(), eq)
	if err != nil {
		t.Fatal(err)
	}
	if u, ok := eqN.Uint64(); !ok || u != wantEq {
		t.Fatalf("equality CountQuery = %v, drain found %d", eqN, wantEq)
	}
}

// corpusRefSequence materializes the full corpus result sequence in
// EvalPage's order: ascending DocID, each document in radix order.
func corpusRefSequence(t *testing.T, c *spanjoin.Corpus, pattern string) []spanjoin.CorpusMatch {
	t.Helper()
	sp, err := spanjoin.Compile(pattern)
	if err != nil {
		t.Fatal(err)
	}
	var ids []spanjoin.DocID
	for id := spanjoin.DocID(0); int(id) < 4*c.Len(); id++ {
		if _, ok := c.Doc(id); ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []spanjoin.CorpusMatch
	for _, id := range ids {
		doc, _ := c.Doc(id)
		ms, err := sp.Eval(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			out = append(out, spanjoin.CorpusMatch{Doc: id, Match: m})
		}
	}
	return out
}

func TestCorpusEvalPage(t *testing.T) {
	for _, opts := range [][]spanjoin.CorpusOption{
		{spanjoin.WithShards(2)},
		{spanjoin.WithShards(3), spanjoin.WithIndex()},
	} {
		c, _ := rankedTestCorpus(t, opts...)
		const pattern = `.*x{mail}.*`
		want := corpusRefSequence(t, c, pattern)
		if len(want) < 4 {
			t.Fatalf("weak instance: %d results", len(want))
		}
		for off := uint64(0); off <= uint64(len(want))+1; off++ {
			pg, err := c.EvalPage(context.Background(), pattern, off, 2)
			if err != nil {
				t.Fatal(err)
			}
			if u, ok := pg.Total.Uint64(); !ok || u != uint64(len(want)) {
				t.Fatalf("offset %d: Total = %v, want %d", off, pg.Total, len(want))
			}
			lo := int(off)
			if lo > len(want) {
				lo = len(want)
			}
			hi := lo + 2
			if hi > len(want) {
				hi = len(want)
			}
			if len(pg.Matches) != hi-lo {
				t.Fatalf("offset %d: %d matches, want %d", off, len(pg.Matches), hi-lo)
			}
			for k, m := range pg.Matches {
				ref := want[lo+k]
				if m.Doc != ref.Doc || matchKey(m.Match) != matchKey(ref.Match) {
					t.Fatalf("offset %d match %d: %v@%d, want %v@%d",
						off, k, m.Match, m.Doc, ref.Match, ref.Doc)
				}
				// The page's match must be bound to its own document text.
				if s := m.Match.MustSubstr("x"); s != "mail" {
					t.Fatalf("page match decodes substring %q", s)
				}
			}
			if st := pg.Stats; st.Scanned+st.Skipped != uint64(c.Len()) {
				t.Fatalf("offset %d: stats %+v do not partition %d docs", off, st, c.Len())
			}
		}
	}
}
