package spanjoin_test

import (
	"sync"
	"testing"

	"spanjoin"
	"spanjoin/internal/workload"
)

// TestConcurrentEvaluation: a compiled Spanner is immutable and must be
// safe for concurrent use; every goroutine gets identical results.
func TestConcurrentEvaluation(t *testing.T) {
	sp := spanjoin.MustCompileSearch(`mail{[a-z]+@[a-z]+\.[a-z]+}`)
	doc := workload.Document(workload.Rand(55), workload.DocumentOptions{
		Sentences: 20, EmailRate: 0.5,
	})
	ref, err := sp.Eval(doc)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ms, err := sp.Eval(doc)
			if err != nil {
				errs <- err
				return
			}
			if len(ms) != len(ref) {
				errs <- errMismatch{len(ms), len(ref)}
				return
			}
			for i := range ms {
				a, _ := ms[i].Span("mail")
				b, _ := ref[i].Span("mail")
				if a != b {
					errs <- errMismatch{i, i}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentQueries: queries too, across strategies.
func TestConcurrentQueries(t *testing.T) {
	doc := workload.Logs(workload.Rand(66), 30)
	q := spanjoin.NewQuery().
		AtomNamed("op", `.*x{[A-Z]+} op=y{[a-z]+} .*`).
		MustBuild()
	ref, err := q.Count(doc)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		strat := spanjoin.StrategyAutomata
		if g%2 == 0 {
			strat = spanjoin.StrategyCanonical
		}
		wg.Add(1)
		go func(s spanjoin.Strategy) {
			defer wg.Done()
			n, err := q.Count(doc, spanjoin.WithStrategy(s))
			if err != nil {
				errs <- err
				return
			}
			if n.String() != ref.String() {
				errs <- errMismatch{n.String(), ref.String()}
			}
		}(strat)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch struct{ got, want any }

func (e errMismatch) Error() string { return "concurrent result mismatch" }
