package spanjoin

import (
	"fmt"
	"io"

	"spanjoin/internal/alphabet"
	"spanjoin/internal/prefilter"
	"spanjoin/internal/rgx"
	"spanjoin/internal/span"
	"spanjoin/internal/vsa"
)

// CompileSearch compiles a pattern for *searching*: the pattern may match
// anywhere in the document, as if wrapped in the paper's Σ*·α·Σ*. This is
// the common mode for extraction tasks, where Compile's whole-document
// semantics would require explicit `.*` padding.
func CompileSearch(pattern string) (*Spanner, error) {
	f, err := rgx.Parse(pattern)
	if err != nil {
		return nil, err
	}
	wrapped := rgx.NewFormula(rgx.Concat{Subs: []rgx.Node{
		rgx.Star{Sub: rgx.Class{C: alphabet.Any()}},
		f.Root,
		rgx.Star{Sub: rgx.Class{C: alphabet.Any()}},
	}})
	a, err := rgx.Compile(wrapped)
	if err != nil {
		return nil, err
	}
	return &Spanner{auto: a, req: prefilter.New(rgx.RequiredLiterals(f.Root)...)}, nil
}

// MustCompileSearch is CompileSearch for statically known patterns.
func MustCompileSearch(pattern string) *Spanner {
	s, err := CompileSearch(pattern)
	if err != nil {
		panic(err)
	}
	return s
}

// MatchesAt decides whether one specific assignment of spans is a result of
// the spanner on doc, in time O(n²·|doc|) independent of the result count
// (an application of the paper's configuration-sequence view, §4.1). The
// assignment must bind exactly the spanner's variables.
func (s *Spanner) MatchesAt(doc string, assignment map[string]Span) (bool, error) {
	vars := s.auto.Vars
	if len(assignment) != len(vars) {
		return false, fmt.Errorf("spanjoin: assignment binds %d variables, spanner has %v", len(assignment), vars)
	}
	t := make(span.Tuple, len(vars))
	for i, v := range vars {
		p, ok := assignment[v]
		if !ok {
			return false, fmt.Errorf("spanjoin: assignment missing variable %s", v)
		}
		t[i] = p
	}
	return vsa.AcceptsTuple(s.auto, doc, vars, t)
}

// EqualAll adds the k-ary string-equality selection ζ=_{x1,…,xk} as a chain
// of binary selections (§5.1 notes the rewriting): all named variables must
// span equal substrings.
func (b *QueryBuilder) EqualAll(vars ...string) *QueryBuilder {
	if b.err != nil {
		return b
	}
	if len(vars) < 2 {
		b.err = fmt.Errorf("spanjoin: EqualAll needs at least two variables")
		return b
	}
	for i := 0; i+1 < len(vars); i++ {
		b.Equal(vars[i], vars[i+1])
	}
	return b
}

// Count returns the exact number of results of the query on doc.
// Equality-free queries not forced onto the canonical plan count through
// the ranked DP over the compiled automaton — no enumeration, cost
// independent of the result count; queries with string equalities (whose
// automata exist per document, Thm 5.4) and forced-canonical plans drain
// the iterator.
func (q *Query) Count(doc string, opts ...Option) (MatchCount, error) {
	o := buildOptions(opts)
	if len(q.cq.Equalities) == 0 && o.Strategy != StrategyCanonical {
		p, _, err := q.compiledPlan()
		if err != nil {
			return MatchCount{}, err
		}
		return newMatchCount(p.Prepare(doc).Rank().Count()), nil
	}
	ms, err := q.Iterate(doc, opts...)
	if err != nil {
		return MatchCount{}, err
	}
	var n uint64
	for {
		if _, ok := ms.Next(); !ok {
			return MatchCount{u: n}, nil
		}
		n++
	}
}

// Difference returns the matches of a on doc that are not matches of b
// (the spanner difference [[a]](doc) \ [[b]](doc); the paper notes regular
// spanners are closed under difference, §2.2.4). Both spanners must have
// the same variable set. Each candidate is filtered with the O(n²·|doc|)
// membership test, so the stream has polynomial delay.
func Difference(a, b *Spanner, doc string) (*Matches, error) {
	if len(a.auto.Vars) != len(b.auto.Vars) || !a.auto.Vars.Equal(b.auto.Vars) {
		return nil, fmt.Errorf("spanjoin: difference requires identical variable sets, got %v and %v",
			a.auto.Vars, b.auto.Vars)
	}
	inner, err := a.Iterate(doc)
	if err != nil {
		return nil, err
	}
	bt := b.auto.Trim()
	if !bt.IsFunctional() {
		return nil, vsa.ErrNotFunctional
	}
	return &Matches{
		it:   &diffIter{inner: inner.it, b: bt, vars: a.auto.Vars, doc: doc},
		vars: a.auto.Vars,
		doc:  doc,
	}, nil
}

type diffIter struct {
	inner interface {
		Next() (span.Tuple, bool)
	}
	b    *vsa.VSA
	vars span.VarList
	doc  string
}

func (d *diffIter) Next() (span.Tuple, bool) {
	for {
		t, ok := d.inner.Next()
		if !ok {
			return nil, false
		}
		member, err := vsa.AcceptsTuple(d.b, d.doc, d.vars, t)
		if err != nil {
			return nil, false
		}
		if !member {
			return t, true
		}
	}
}

func (d *diffIter) Vars() span.VarList { return d.vars }

// Dot renders the spanner's automaton in Graphviz dot format.
func (s *Spanner) Dot(name string) string { return s.auto.Dot(name) }

// Save writes the compiled spanner to w in a stable text format, so that
// expensive compositions (joins of many atoms) can be cached and reloaded
// with Load.
func (s *Spanner) Save(w io.Writer) error { return s.auto.Encode(w) }

// Load reads a spanner previously written by Save. The automaton is
// verified to be functional before use.
func Load(r io.Reader) (*Spanner, error) {
	a, err := vsa.Decode(r)
	if err != nil {
		return nil, err
	}
	if !a.IsFunctional() {
		return nil, vsa.ErrNotFunctional
	}
	return &Spanner{auto: a}, nil
}
