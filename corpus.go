package spanjoin

import (
	"context"
	"runtime"
	"time"

	"spanjoin/internal/core"
	"spanjoin/internal/corpus"
	"spanjoin/internal/enum"
	"spanjoin/internal/obs"
	"spanjoin/internal/prefilter"
	"spanjoin/internal/resilience"
	"spanjoin/internal/span"
)

// DocID identifies a document in a Corpus; IDs are stable for the life of
// the corpus.
type DocID = corpus.DocID

// Corpus is a sharded, append-only collection of documents with a shared
// compiled-query cache — the engine's multi-document layer. Add documents
// from any number of goroutines; evaluate patterns, spanners and queries
// over the whole corpus with Eval and friends, which fan the shards out to
// a worker pool (each worker owning one Reset-able enumerator over the
// shared compiled automaton) and stream (DocID, Match) results through a
// bounded channel with context cancellation.
//
// Repeated Eval calls with the same pattern hit the LRU compiled-query
// cache; concurrent identical misses compile once (singleflight). A Corpus
// is safe for concurrent use.
type Corpus struct {
	store   *corpus.Store
	cache   *corpus.Cache
	workers int
	buffer  int

	// reg is the corpus's metrics registry (see observability.go); always
	// non-nil, shared by every layer below (store, gate, WAL) and exposed
	// by Metrics for scraping. planBuild times the compilations that
	// actually ran (cache misses whose Spanner had no memoized plan yet).
	reg       *obs.Registry
	planBuild *obs.Histogram
}

// corpusConfig collects the options of NewCorpus and Open.
type corpusConfig struct {
	shards        int
	cacheCap      int
	workers       int
	buffer        int
	indexed       bool
	maxConcurrent int
	maxQueue      int

	// Durable-corpus knobs (Open only; see durable.go).
	syncPolicy        SyncPolicy
	syncInterval      time.Duration
	snapshotThreshold int64
}

// CorpusOption configures a Corpus at creation.
type CorpusOption func(*corpusConfig)

// WithShards sets the shard count (default GOMAXPROCS). More shards mean
// less write contention and finer-grained evaluation work units.
func WithShards(n int) CorpusOption {
	return func(c *corpusConfig) { c.shards = n }
}

// WithCacheCapacity bounds the compiled-query LRU cache (default 128
// compiled patterns).
func WithCacheCapacity(n int) CorpusOption {
	return func(c *corpusConfig) { c.cacheCap = n }
}

// WithWorkers sets the evaluation pool size (default GOMAXPROCS).
func WithWorkers(n int) CorpusOption {
	return func(c *corpusConfig) { c.workers = n }
}

// WithResultBuffer sets the result channel capacity of corpus evaluations
// (default 256) — the window by which enumeration may run ahead of the
// consumer.
func WithResultBuffer(n int) CorpusOption {
	return func(c *corpusConfig) { c.buffer = n }
}

// WithIndex enables the per-shard skip index: each Add also records the
// document's byte bigrams and trigrams in posting lists (O(distinct grams)
// ≤ 2·|doc| positions per document), and evaluations whose pattern or
// query carries literal requirements intersect those postings to visit
// only candidate documents — non-candidates cost nothing, not even a
// substring scan. Queries without derivable literals are unaffected.
func WithIndex() CorpusOption {
	return func(c *corpusConfig) { c.indexed = true }
}

// NewCorpus creates an empty corpus.
func NewCorpus(opts ...CorpusOption) *Corpus {
	var cfg corpusConfig
	for _, o := range opts {
		o(&cfg)
	}
	store := corpus.NewStore(cfg.shards)
	if cfg.indexed {
		store.EnableIndex()
	}
	if cfg.maxConcurrent > 0 {
		store.SetGate(resilience.NewGate(int64(cfg.maxConcurrent), cfg.maxQueue))
	}
	return newCorpus(store, cfg)
}

// newCorpus finishes construction for NewCorpus and Open: the cache, and
// the metrics registry wired through every layer. The gate and durable
// half must already be installed on the store — SetRegistry registers
// their instruments only when present.
func newCorpus(store *corpus.Store, cfg corpusConfig) *Corpus {
	c := &Corpus{
		store:   store,
		cache:   corpus.NewCache(cfg.cacheCap),
		workers: cfg.workers,
		buffer:  cfg.buffer,
		reg:     obs.NewRegistry(),
	}
	store.SetRegistry(c.reg)
	c.planBuild = c.reg.Histogram("spanjoin_plan_build_seconds", "Compilations of a query plan actually run (cache misses).", nil)
	c.reg.CounterFunc("spanjoin_cache_hits_total", "Compiled-query cache hits, including singleflight joiners.", func() uint64 { h, _ := c.cache.Stats(); return h })
	c.reg.CounterFunc("spanjoin_cache_misses_total", "Compiled-query cache misses (compilations run).", func() uint64 { _, m := c.cache.Stats(); return m })
	c.reg.Gauge("spanjoin_cache_resident", "Compiled artifacts currently cached.", func() float64 { return float64(c.cache.Len()) })
	return c
}

// Add appends a document and returns its stable ID. The empty string is
// a valid document — counted by Len, durable on a durable corpus, and
// evaluated like any other. On a durable corpus whose log has failed Add
// panics with the log's error; use AddErr to handle it instead.
func (c *Corpus) Add(doc string) DocID { return c.store.Add(doc) }

// AddAll appends documents and returns their IDs, indexed like docs.
func (c *Corpus) AddAll(docs ...string) []DocID {
	ids := make([]DocID, len(docs))
	for i, d := range docs {
		ids[i] = c.store.Add(d)
	}
	return ids
}

// Doc returns the document with the given ID.
func (c *Corpus) Doc(id DocID) (string, bool) { return c.store.Get(id) }

// Len reports the number of documents.
func (c *Corpus) Len() int { return c.store.Len() }

// Indexed reports whether the skip index is enabled (WithIndex).
func (c *Corpus) Indexed() bool { return c.store.Indexed() }

// NumShards reports the shard count.
func (c *Corpus) NumShards() int { return c.store.NumShards() }

// CacheStats is a snapshot of the compiled-query cache counters.
type CacheStats struct {
	// Hits counts Eval compilations served from the cache, including
	// callers that joined an in-flight compilation (singleflight).
	Hits uint64
	// Misses counts compilations actually run.
	Misses uint64
	// Resident is the number of compiled artifacts currently cached.
	Resident int
}

// HitRate is Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// CacheStats reports the compiled-query cache counters.
func (c *Corpus) CacheStats() CacheStats {
	h, m := c.cache.Stats()
	return CacheStats{Hits: h, Misses: m, Resident: c.cache.Len()}
}

// CorpusMatch is one streamed corpus result: a match bound to the document
// it was extracted from.
type CorpusMatch struct {
	Doc   DocID
	Match Match
}

// CorpusMatches streams the results of a corpus evaluation. Drain it with
// Next, then check Err; Close aborts early. Results arrive in no
// guaranteed order across documents, but within one document in the
// engine's deterministic radix order.
type CorpusMatches struct {
	res   *corpus.Results
	store *corpus.Store
	vars  span.VarList

	// Last resolved document: matches of one document arrive contiguously,
	// so this avoids a store lookup (shard read lock) per streamed tuple.
	lastID  DocID
	lastDoc string
	lastOK  bool
}

// Next returns the next match; ok is false when the stream is exhausted,
// cancelled or failed — distinguish with Err.
func (m *CorpusMatches) Next() (CorpusMatch, bool) {
	r, ok := m.res.Next()
	if !ok {
		return CorpusMatch{}, false
	}
	if !m.lastOK || r.Doc != m.lastID {
		m.lastDoc, _ = m.store.Get(r.Doc)
		m.lastID, m.lastOK = r.Doc, true
	}
	return CorpusMatch{Doc: r.Doc, Match: Match{vars: m.vars, tuple: r.Tuple, doc: m.lastDoc}}, true
}

// Vars lists the output variables.
func (m *CorpusMatches) Vars() []string { return append([]string(nil), m.vars...) }

// Err reports the first evaluation error or the context's error after a
// cancellation; nil after normal exhaustion, after Close, and after a
// stream that ended by reaching its WithLimit cap. Failure modes are
// typed: an exceeded WithTimeout deadline is context.DeadlineExceeded, an
// exhausted WithBudget is ErrBudgetExceeded, and a panic anywhere in the
// evaluation is a *PanicError — all detectable with errors.Is/errors.As.
func (m *CorpusMatches) Err() error { return m.res.Err() }

// EvalStats is a snapshot of a corpus evaluation's prefilter and work
// counters.
type EvalStats struct {
	// Scanned counts documents the engine actually evaluated.
	Scanned uint64
	// Skipped counts documents the prefilter excluded: skip-index
	// non-candidates plus documents failing the literal requirement scan.
	// Scanned+Skipped equals the snapshot size once the stream drains.
	Skipped uint64
	// SkippedIndex is the subset of Skipped the skip index excluded
	// outright — never visited, not even for a substring scan. Zero
	// without WithIndex.
	SkippedIndex uint64
	// Work is the work units spent so far — one per byte of every scanned
	// document plus one per delivered result; the meter WithBudget is
	// charged against.
	Work uint64
	// Delivered counts results the stream has handed out so far; bounded
	// by WithLimit when one is set.
	Delivered uint64
}

// Visited counts the documents the evaluation touched at all: scanned
// plus those rejected by the literal scan (the skip index's candidate
// set, when the index is on).
func (s EvalStats) Visited() uint64 { return s.Scanned + s.Skipped - s.SkippedIndex }

// Stats reports how many documents the evaluation scanned and skipped so
// far; final after Next has returned ok=false.
func (m *CorpusMatches) Stats() EvalStats {
	return EvalStats{
		Scanned:      m.res.Scanned(),
		Skipped:      m.res.Skipped(),
		SkippedIndex: m.res.SkippedIndex(),
		Work:         m.res.Work(),
		Delivered:    m.res.Delivered(),
	}
}

// Close aborts the evaluation and releases its worker pool. It is
// idempotent and safe to call from any number of goroutines concurrently
// — with each other, with Next, and after exhaustion.
func (m *CorpusMatches) Close() { m.res.Close() }

// newMatches wraps a result stream, arranging for an abandoned stream —
// one the caller neither drains nor Closes — to release its worker pool
// (and admission slot) when the wrapper becomes unreachable. The cleanup
// attaches to the public wrapper, not the internal Results: the pool's
// goroutines keep Results reachable, so only the wrapper's reachability
// tracks the caller's interest.
func (c *Corpus) newMatches(res *corpus.Results) *CorpusMatches {
	m := &CorpusMatches{res: res, store: c.store, vars: res.Vars()}
	runtime.AddCleanup(m, func(r *corpus.Results) { go r.Close() }, res)
	return m
}

// evalOptions maps the public per-query options onto the corpus layer's,
// resolving WithTimeout into an absolute deadline at call time.
func (c *Corpus) evalOptions(req prefilter.Requirement, o core.Options) corpus.EvalOptions {
	eo := corpus.EvalOptions{
		Workers:  c.workers,
		Buffer:   c.buffer,
		Required: req,
		Limit:    o.Limit,
		Budget:   o.Budget,
	}
	if o.Timeout > 0 {
		eo.Deadline = time.Now().Add(o.Timeout)
	}
	return eo
}

// Eval compiles the pattern (through the corpus cache) and evaluates it
// over every document, streaming matches. The pattern must match whole
// documents, like Spanner.Eval; use EvalSearch for substring semantics.
// Options bound the evaluation: WithTimeout, WithLimit, WithBudget.
func (c *Corpus) Eval(ctx context.Context, pattern string, opts ...Option) (*CorpusMatches, error) {
	sp, err := c.compileCached(ctx, "anchor", pattern, Compile)
	if err != nil {
		return nil, err
	}
	return c.EvalSpanner(ctx, sp, opts...)
}

// EvalSearch is Eval with substring semantics: the pattern is compiled
// unanchored (CompileSearch), cached separately from anchored compiles of
// the same source.
func (c *Corpus) EvalSearch(ctx context.Context, pattern string, opts ...Option) (*CorpusMatches, error) {
	sp, err := c.compileCached(ctx, "search", pattern, CompileSearch)
	if err != nil {
		return nil, err
	}
	return c.EvalSpanner(ctx, sp, opts...)
}

// compileCached deduplicates compilation through the LRU cache, keyed by
// the pattern source plus the compilation mode; concurrent misses on one
// key compile once. A traced query records the lookup as the cache stage,
// with Items=1 on a miss (the compile closure runs on this goroutine, so
// the flag needs no synchronization) and Items=0 on a hit.
//
//spanjoin:stage cache
func (c *Corpus) compileCached(ctx context.Context, mode, pattern string, compile func(string) (*Spanner, error)) (*Spanner, error) {
	t0 := time.Now()
	var missed int64
	v, err := c.cache.Get(mode+"\x00"+pattern, func() (any, error) {
		missed = 1
		return compile(pattern)
	})
	obs.FromContext(ctx).ObserveItems(obs.StageCache, time.Since(t0), missed)
	if err != nil {
		return nil, err
	}
	return v.(*Spanner), nil
}

// recordPlanBuild attributes a plan compilation that this query actually
// ran — built is false for every later call hitting the memoized plan —
// to the plan-build histogram and the query's trace.
//
//spanjoin:stage plan_build
func (c *Corpus) recordPlanBuild(ctx context.Context, p *enum.Plan, built bool) {
	if !built || p == nil {
		return
	}
	d := p.BuildDuration()
	c.planBuild.Observe(d)
	obs.FromContext(ctx).Observe(obs.StagePlan, d)
}

// EvalSpanner evaluates a precompiled spanner over every document in the
// corpus (bypassing the cache). The spanner's required-literal prefilter
// skips non-matching documents before any per-document work, and its
// compiled plan — closures, letter table, byte-class transition table — is
// memoized on the spanner itself, so the corpus cache's Spanners carry
// their plan across Eval calls: one compilation per cached query, then
// pure matrix sweeps over every document the store will ever hold.
// An overloaded corpus (WithMaxConcurrent) sheds the call synchronously
// with ErrOverloaded before any worker starts.
func (c *Corpus) EvalSpanner(ctx context.Context, sp *Spanner, opts ...Option) (*CorpusMatches, error) {
	p, built, err := sp.compiledPlan()
	if err != nil {
		return nil, err
	}
	c.recordPlanBuild(ctx, p, built)
	res, err := c.store.EvalPlan(ctx, p, c.evalOptions(sp.req, buildOptions(opts)))
	if err != nil {
		return nil, err
	}
	return c.newMatches(res), nil
}

// EvalQuery evaluates a conjunctive query over every document. Queries
// without string equalities compile once into a single automaton (Theorem
// 3.11) and take the shared-enumerator fast path; queries with equalities
// — whose automata exist only per input string (Theorem 5.4) — and
// queries forced onto the canonical strategy evaluate document by
// document with the chosen plan.
func (c *Corpus) EvalQuery(ctx context.Context, q *Query, opts ...Option) (*CorpusMatches, error) {
	o := buildOptions(opts)
	// The plan-level requirement (conjunction of the atoms' literal
	// requirements) prefilters every evaluation path, exactly like
	// EvalSpanner: equalities and projection only restrict results
	// further, so the requirement stays necessary under every strategy.
	req := q.requirement()
	forcedCanonical := o.Strategy == core.Canonical
	if len(q.cq.Equalities) == 0 && !forcedCanonical {
		// Equality-free fast path: the whole plan (join + projection) is
		// document independent; compile once per Query — automaton,
		// closures and transition table — and share it across the worker
		// pool and across repeated EvalQuery calls.
		p, built, err := q.compiledPlan()
		if err != nil {
			return nil, err
		}
		c.recordPlanBuild(ctx, p, built)
		res, err := c.store.EvalPlan(ctx, p, c.evalOptions(req, o))
		if err != nil {
			return nil, err
		}
		return c.newMatches(res), nil
	}
	newEval, err := queryDocEval(q, o)
	if err != nil {
		return nil, err
	}
	res, err := c.store.EvalFunc(ctx, q.cq.OutVars(), newEval, c.evalOptions(req, o))
	if err != nil {
		return nil, err
	}
	return c.newMatches(res), nil
}

// queryDocEval builds the per-document evaluator for query plans that
// cannot share a compiled enumerator, hoisting the document-independent
// atom join when the automata plan applies (Thm 5.4). EvalQuery and
// CountQuery share it.
// Per-document plans rebuild their iterator per document, so the
// query-liveness probe (stop) has no long build to interrupt — the emit
// path already observes cancellation per tuple; they ignore it.
func queryDocEval(q *Query, o core.Options) (corpus.NewDocEval, error) {
	if o.Strategy != core.Canonical && q.cq.Plan(o) == core.Automata {
		joined, err := q.joinedAtoms()
		if err != nil {
			return nil, err
		}
		return func(func() bool) corpus.DocEval {
			return func(doc string, emit func(span.Tuple) bool) error {
				it, err := q.cq.EnumerateJoined(joined, doc)
				if err != nil {
					return err
				}
				return emitAll(it, emit)
			}
		}, nil
	}
	return func(func() bool) corpus.DocEval {
		return func(doc string, emit func(span.Tuple) bool) error {
			it, err := q.cq.Enumerate(doc, o)
			if err != nil {
				return err
			}
			return emitAll(it, emit)
		}
	}, nil
}

// emitAll drains an iterator into emit, stopping early on cancellation.
func emitAll(it core.Iterator, emit func(span.Tuple) bool) error {
	for {
		t, ok := it.Next()
		if !ok {
			return nil
		}
		if !emit(t) {
			return nil
		}
	}
}

// EvalAll is Eval materialized: all matches grouped by document. Documents
// without matches have no entry.
func (c *Corpus) EvalAll(ctx context.Context, pattern string, opts ...Option) (map[DocID][]Match, error) {
	ms, err := c.Eval(ctx, pattern, opts...)
	if err != nil {
		return nil, err
	}
	defer ms.Close()
	out := make(map[DocID][]Match)
	for {
		m, ok := ms.Next()
		if !ok {
			break
		}
		out[m.Doc] = append(out[m.Doc], m.Match)
	}
	if err := ms.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
